"""Tests for the three-level hardware description and presets."""

import pytest

from repro.arch.config import (
    KB,
    ChipletConfig,
    CoreConfig,
    MemoryConfig,
    PackageConfig,
    build_hardware,
    case_study_hardware,
    proportional_memory,
    simba_like_hardware,
)


class TestStructuralConfigs:
    def test_core_mac_count(self):
        assert CoreConfig(lanes=8, vector_size=8).macs == 64

    def test_chiplet_mac_count(self):
        chiplet = ChipletConfig(cores=8, core=CoreConfig(lanes=8, vector_size=8))
        assert chiplet.macs == 512

    def test_package_mac_count(self):
        package = PackageConfig(
            chiplets=4,
            chiplet=ChipletConfig(cores=8, core=CoreConfig(lanes=8, vector_size=8)),
        )
        assert package.macs == 2048

    @pytest.mark.parametrize("lanes,vector", [(0, 8), (8, 0), (-1, 8)])
    def test_invalid_core_raises(self, lanes, vector):
        with pytest.raises(ValueError):
            CoreConfig(lanes=lanes, vector_size=vector)

    def test_invalid_chiplet_raises(self):
        with pytest.raises(ValueError):
            ChipletConfig(cores=0, core=CoreConfig(lanes=1, vector_size=1))

    def test_invalid_package_raises(self):
        with pytest.raises(ValueError):
            PackageConfig(
                chiplets=0,
                chiplet=ChipletConfig(cores=1, core=CoreConfig(lanes=1, vector_size=1)),
            )

    def test_negative_memory_raises(self):
        with pytest.raises(ValueError):
            MemoryConfig(a_l1_bytes=-1, w_l1_bytes=0, o_l1_bytes=0, a_l2_bytes=0)


class TestCaseStudyPreset:
    """Pin the Section VI-A configuration exactly."""

    def test_computation_resources(self):
        hw = case_study_hardware()
        assert hw.config_tuple() == (4, 8, 8, 8)
        assert hw.total_macs == 2048

    def test_memory_sizes(self):
        hw = case_study_hardware()
        assert hw.memory.o_l1_bytes == 1536          # 1.5 KB
        assert hw.memory.a_l1_bytes == 800           # 800 B
        assert hw.memory.w_l1_bytes == 18 * KB       # 18 KB
        assert hw.memory.a_l2_bytes == 64 * KB       # 64 KB

    def test_label(self):
        assert case_study_hardware().label() == "4-8-8-8"

    def test_o_l1_holds_core_tile_psums(self):
        # 1.5 KB of 24-bit psums = 512 entries = 64 pixels x 8 lanes.
        assert case_study_hardware().o_l1_psum_capacity() == 512

    def test_simba_like_shares_resources(self):
        baton = case_study_hardware()
        simba = simba_like_hardware()
        assert simba.memory == baton.memory
        assert simba.package == baton.package

    def test_with_memory_returns_copy(self):
        hw = case_study_hardware()
        new_mem = MemoryConfig(
            a_l1_bytes=1024, w_l1_bytes=KB, o_l1_bytes=512, a_l2_bytes=32 * KB
        )
        updated = hw.with_memory(new_mem)
        assert updated.memory == new_mem
        assert hw.memory.a_l1_bytes == 800  # original untouched


class TestProportionalMemory:
    def test_anchors_to_case_study(self):
        hw = case_study_hardware()
        mem = proportional_memory(hw.package)
        assert mem.w_l1_bytes == 18 * KB
        assert mem.o_l1_bytes == 1536
        assert mem.a_l1_bytes == 800
        assert mem.a_l2_bytes == 64 * KB

    def test_scales_with_lanes(self):
        wide = build_hardware(4, 8, 16, 8)
        assert wide.memory.w_l1_bytes == 36 * KB
        assert wide.memory.o_l1_bytes == 3072

    def test_scales_with_cores(self):
        many = build_hardware(4, 16, 8, 8)
        assert many.memory.a_l2_bytes == 128 * KB

    def test_floors_for_tiny_cores(self):
        tiny = build_hardware(1, 1, 2, 2)
        assert tiny.memory.w_l1_bytes >= 2 * KB
        assert tiny.memory.a_l1_bytes >= 128
        assert tiny.memory.o_l1_bytes >= 48


class TestBuildHardware:
    def test_label_from_dimensions(self):
        assert build_hardware(2, 4, 8, 16).label() == "2-4-8-16"

    def test_explicit_memory_respected(self):
        mem = MemoryConfig(
            a_l1_bytes=2048, w_l1_bytes=4 * KB, o_l1_bytes=768, a_l2_bytes=32 * KB
        )
        hw = build_hardware(2, 2, 4, 4, memory=mem)
        assert hw.memory == mem

    def test_macro_accessors(self):
        hw = case_study_hardware()
        assert hw.a_l1().size_bytes == 800
        assert hw.w_l1().size_bytes == 18 * KB
        assert hw.o_l1().size_bytes == 1536
        assert hw.a_l2().size_bytes == 64 * KB

    def test_o_l2_auto_sizing(self):
        hw = case_study_hardware()
        assert hw.o_l2(4096).size_bytes == 4096
        pinned = hw.with_memory(
            MemoryConfig(
                a_l1_bytes=800,
                w_l1_bytes=18 * KB,
                o_l1_bytes=1536,
                a_l2_bytes=64 * KB,
                o_l2_bytes=8 * KB,
            )
        )
        assert pinned.o_l2(4096).size_bytes == 8 * KB
