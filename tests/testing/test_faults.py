"""The deterministic fault-injection harness: DSL, firing, and plumbing.

Every fault decision must be a pure function of (spec, task index, attempt)
-- no wall-clock state -- so a faulted run replays exactly and CI can assert
faulted output against a clean run byte for byte.
"""

import pytest

from repro.testing.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedTaskError,
    active_plan,
    install_plan,
    parse_fault_specs,
)


@pytest.fixture(autouse=True)
def _no_installed_plan():
    previous = install_plan(None)
    yield
    install_plan(previous)


class TestParse:
    def test_kind_only(self):
        (spec,) = parse_fault_specs("crash")
        assert spec.kind == "crash"
        assert spec.rate == 1.0
        assert spec.attempts == 1

    def test_rate_and_params(self):
        (spec,) = parse_fault_specs("crash:0.25@seed=7&attempts=2")
        assert spec.rate == 0.25
        assert spec.seed == 7
        assert spec.attempts == 2

    def test_indices_and_sleep(self):
        (spec,) = parse_fault_specs("hang:@indices=3;5&sleep=0.2")
        assert spec.indices == (3, 5)
        assert spec.sleep_s == 0.2

    def test_multiple_specs(self):
        specs = parse_fault_specs("kill:@indices=0, exc:@indices=5")
        assert [s.kind for s in specs] == ["kill", "exc"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_specs("explode")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="bad rate"):
            parse_fault_specs("crash:often")

    def test_bad_param_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_specs("crash@seed=x")
        with pytest.raises(ValueError):
            parse_fault_specs("crash@volume=11")


class TestFires:
    def test_rate_draw_is_deterministic(self):
        spec = FaultSpec(kind="crash", rate=0.3, seed=7)
        first = [spec.fires(i) for i in range(200)]
        second = [spec.fires(i) for i in range(200)]
        assert first == second
        assert 20 <= sum(first) <= 100  # ~30% of 200, loosely

    def test_seed_changes_the_draw(self):
        a = FaultSpec(kind="crash", rate=0.3, seed=1)
        b = FaultSpec(kind="crash", rate=0.3, seed=2)
        assert [a.fires(i) for i in range(200)] != [
            b.fires(i) for i in range(200)
        ]

    def test_attempts_gate(self):
        spec = FaultSpec(kind="crash", indices=(4,), attempts=1)
        assert spec.fires(4, attempt=0)
        assert not spec.fires(4, attempt=1)
        always = FaultSpec(kind="crash", indices=(4,), attempts=0)
        assert always.fires(4, attempt=3)

    def test_indices_override_rate(self):
        spec = FaultSpec(kind="exc", rate=0.0, indices=(2,))
        assert spec.fires(2)
        assert not spec.fires(3)


class TestPlan:
    def test_crash_is_transient(self):
        plan = FaultPlan(parse_fault_specs("crash:@indices=1"))
        plan.before_task(0)  # index 0 untouched
        with pytest.raises(InjectedCrashError):
            plan.before_task(1)

    def test_exc_is_deterministic(self):
        plan = FaultPlan(parse_fault_specs("exc:@indices=0"))
        with pytest.raises(InjectedTaskError):
            plan.before_task(0)
        assert not issubclass(InjectedTaskError, InjectedCrashError)

    def test_interrupt_raises_keyboard_interrupt(self):
        plan = FaultPlan(parse_fault_specs("interrupt:@indices=0"))
        with pytest.raises(KeyboardInterrupt):
            plan.before_task(0)

    def test_kill_inline_downgrades_to_crash(self):
        # Outside a pool worker os._exit would kill the test process.
        plan = FaultPlan(parse_fault_specs("kill:@indices=0"))
        with pytest.raises(InjectedCrashError):
            plan.before_task(0)

    def test_corrupt_text_truncates(self):
        plan = FaultPlan(parse_fault_specs("corrupt-cache:@indices=0"))
        text = '{"version": 1, "entries": {"k": 1}}'
        corrupted = plan.corrupt_text(text, 0)
        assert corrupted is not None and corrupted != text
        assert plan.corrupt_text(text, 1) is None

    def test_hang_sleeps(self):
        import time

        plan = FaultPlan(parse_fault_specs("hang:@indices=0&sleep=0.05"))
        start = time.monotonic()
        plan.before_task(0)
        assert time.monotonic() - start >= 0.05


class TestIoKinds:
    """The sink-write fault kinds: enospc, eio, slow-disk, corrupt-study."""

    def test_parse_sink_param(self):
        (spec,) = parse_fault_specs("enospc:0.5@seed=3&sink=cache")
        assert spec.kind == "enospc"
        assert spec.rate == 0.5
        assert spec.sink == "cache"

    def test_parse_empty_sink_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_specs("eio@sink=")

    def test_before_io_enospc_and_eio(self):
        import errno

        plan = FaultPlan(parse_fault_specs("enospc:@indices=0, eio:@indices=1"))
        with pytest.raises(OSError) as exc:
            plan.before_io("cache", 0)
        assert exc.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as exc:
            plan.before_io("cache", 1)
        assert exc.value.errno == errno.EIO
        plan.before_io("cache", 2)  # no fault scheduled

    def test_before_io_sink_filter(self):
        plan = FaultPlan(parse_fault_specs("enospc@sink=cache"))
        plan.before_io("checkpoint", 0)  # other sinks untouched
        with pytest.raises(OSError):
            plan.before_io("cache", 0)

    def test_slow_disk_sleeps_without_failing(self):
        import time

        plan = FaultPlan(parse_fault_specs("slow-disk:@indices=0&sleep=0.05"))
        start = time.monotonic()
        plan.before_io("bench", 0)
        assert time.monotonic() - start >= 0.05

    def test_task_kinds_ignore_io_hook_and_vice_versa(self):
        plan = FaultPlan(parse_fault_specs("crash:@indices=0, enospc:@indices=0"))
        # before_io never raises the task fault; before_task never the I/O one.
        with pytest.raises(OSError):
            plan.before_io("cache", 0)
        with pytest.raises(InjectedCrashError):
            plan.before_task(0)

    def test_corrupt_study_truncates_existing_file(self, tmp_path):
        plan = FaultPlan(parse_fault_specs("corrupt-study"))
        target = tmp_path / "study.sqlite"
        target.write_bytes(b"A" * 100)
        assert plan.corrupt_study_file(target)
        blob = target.read_bytes()
        assert len(blob) < 100
        assert blob.endswith(b"\xff")

    def test_corrupt_study_writes_garbage_for_missing_file(self, tmp_path):
        plan = FaultPlan(parse_fault_specs("corrupt-study"))
        target = tmp_path / "fresh" / "study.sqlite"
        assert plan.corrupt_study_file(target)
        assert target.exists()
        # Not a valid sqlite header -- quick_check will reject it.
        assert not target.read_bytes().startswith(b"SQLite format 3\x00")

    def test_corrupt_study_respects_indices(self, tmp_path):
        plan = FaultPlan(parse_fault_specs("corrupt-study:@indices=1"))
        target = tmp_path / "study.sqlite"
        assert not plan.corrupt_study_file(target, index=0)
        assert not target.exists()


class TestActivePlan:
    def test_none_without_env_or_install(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_plan() is None

    def test_env_supplies_plan(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:0.5@seed=3")
        plan = active_plan()
        assert plan is not None
        assert plan.specs[0].rate == 0.5
        # Cached by raw string; a changed value re-parses.
        monkeypatch.setenv(FAULTS_ENV, "crash:0.25@seed=3")
        assert active_plan().specs[0].rate == 0.25

    def test_installed_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash")
        mine = FaultPlan(())
        install_plan(mine)
        assert active_plan() is mine
