"""Property-based tests for layer geometry and tiling invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    PlanarGrid,
    halo_redundancy_ratio,
    tile_input_elements,
    unique_input_elements,
)
from repro.workloads.layer import ConvLayer, ceil_div, tile_extent


@st.composite
def conv_layers(draw):
    kh = draw(st.integers(1, 7))
    kw = draw(st.integers(1, 7))
    stride = draw(st.integers(1, 3))
    padding = draw(st.integers(0, 3))
    h = draw(st.integers(max(kh - 2 * padding, 1), 64))
    w = draw(st.integers(max(kw - 2 * padding, 1), 64))
    # Guarantee a non-empty output plane.
    if h + 2 * padding < kh:
        h = kh
    if w + 2 * padding < kw:
        w = kw
    return ConvLayer(
        name="prop",
        h=h,
        w=w,
        ci=draw(st.integers(1, 128)),
        co=draw(st.integers(1, 128)),
        kh=kh,
        kw=kw,
        stride=stride,
        padding=padding,
    )


class TestLayerGeometry:
    @given(conv_layers())
    def test_macs_consistent_with_elements(self, layer):
        assert layer.macs == layer.output_elements * layer.kh * layer.kw * layer.ci

    @given(conv_layers(), st.integers(1, 32))
    def test_input_rows_monotone(self, layer, rows):
        assert layer.input_rows_for(rows + 1) > layer.input_rows_for(rows)

    @given(conv_layers(), st.integers(1, 16), st.integers(1, 16))
    def test_window_superadditive_with_halo(self, layer, a, b):
        # Splitting a span refetches the halo: per-tile windows never sum to
        # less than the joint window.
        joint = layer.input_rows_for(a + b)
        split = layer.input_rows_for(a) + layer.input_rows_for(b)
        assert split >= joint

    @given(conv_layers())
    def test_halo_bounds(self, layer):
        assert 0 <= layer.halo_rows < layer.kh
        assert 0 <= layer.halo_cols < layer.kw


class TestTileExtent:
    @given(st.integers(1, 500), st.integers(1, 64))
    def test_partition_is_exact(self, total, ways):
        extents = [tile_extent(total, ways, i) for i in range(ways)]
        assert sum(extents) == total
        assert all(0 <= e <= ceil_div(total, ways) for e in extents)

    @given(st.integers(1, 500), st.integers(1, 64))
    def test_first_tile_is_ceil(self, total, ways):
        assert tile_extent(total, ways, 0) == min(total, ceil_div(total, ways))


class TestGridProperties:
    @given(conv_layers(), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60)
    def test_tiles_cover_plane(self, layer, rows, cols):
        grid = PlanarGrid(rows, cols)
        covered = sum(tr * tc for tr, tc in grid.tiles(layer.ho, layer.wo))
        assert covered == layer.ho * layer.wo

    @given(conv_layers(), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60)
    def test_redundancy_non_negative(self, layer, rows, cols):
        grid = PlanarGrid(rows, cols)
        assert halo_redundancy_ratio(layer, grid) >= -1e-9

    @given(conv_layers(), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60)
    def test_tile_input_at_least_unique(self, layer, rows, cols):
        grid = PlanarGrid(rows, cols)
        assert tile_input_elements(layer, grid) >= unique_input_elements(layer) - 1e-9

    @given(conv_layers())
    def test_single_tile_is_exact(self, layer):
        grid = PlanarGrid(1, 1)
        assert tile_input_elements(layer, grid) == unique_input_elements(layer)
