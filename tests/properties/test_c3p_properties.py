"""Property-based tests for the C3P methodology's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import KB, MemoryConfig, build_hardware
from repro.core.c3p import (
    analyze_activation_l1,
    analyze_activation_l2,
    analyze_weight_buffer,
)
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import LoopOrder, SpatialPrimitive, TemporalPrimitive
from repro.workloads.layer import ConvLayer


@st.composite
def nests(draw):
    """A random valid (layer, hardware, mapping) loop nest."""
    layer = ConvLayer(
        name="prop",
        h=draw(st.sampled_from([14, 28, 56])),
        w=draw(st.sampled_from([14, 28, 56])),
        ci=draw(st.sampled_from([8, 32, 64])),
        co=draw(st.sampled_from([32, 64, 256])),
        kh=draw(st.sampled_from([1, 3, 5])),
        kw=draw(st.sampled_from([1, 3])),
        stride=1,
        padding=1,
    )
    n_chiplets = draw(st.sampled_from([1, 2, 4]))
    n_cores = draw(st.sampled_from([1, 2, 4]))
    hw = build_hardware(
        n_chiplets,
        n_cores,
        8,
        8,
        memory=MemoryConfig(
            a_l1_bytes=2 * KB, w_l1_bytes=8 * KB, o_l1_bytes=1536, a_l2_bytes=64 * KB
        ),
    )
    pkg = (
        SpatialPrimitive.channel(n_chiplets)
        if draw(st.booleans()) or layer.co < n_chiplets
        else SpatialPrimitive.plane(PlanarGrid(1, n_chiplets))
    )
    if pkg.dim.value == "C" and layer.co < n_chiplets:
        pkg = SpatialPrimitive.plane(PlanarGrid(1, n_chiplets))
    chip = (
        SpatialPrimitive.channel(n_cores)
        if draw(st.booleans())
        else SpatialPrimitive.plane(PlanarGrid(1, n_cores))
    )
    orders = [LoopOrder.CHANNEL_PRIORITY, LoopOrder.PLANE_PRIORITY]
    mapping = Mapping(
        package_spatial=pkg,
        package_temporal=TemporalPrimitive(
            draw(st.sampled_from(orders)),
            draw(st.sampled_from([8, 16, 56])),
            draw(st.sampled_from([8, 16, 56])),
            draw(st.sampled_from([16, 64, 256])),
        ),
        chiplet_spatial=chip,
        chiplet_temporal=TemporalPrimitive(
            draw(st.sampled_from(orders)),
            draw(st.sampled_from([2, 4, 8])),
            draw(st.sampled_from([2, 4, 8])),
            8,
        ),
    )
    return LoopNest(layer, hw, mapping)


BUFFER_SIZES = st.sampled_from([0, 256, 1024, 8 * KB, 64 * KB, 10**7])


class TestC3PInvariants:
    @given(nests(), BUFFER_SIZES)
    @settings(max_examples=120)
    def test_reload_factor_at_least_one(self, nest, buf):
        for analyze in (
            analyze_weight_buffer,
            analyze_activation_l1,
            analyze_activation_l2,
        ):
            analysis = analyze(nest, buf)
            assert analysis.reload_factor >= 1.0
            assert analysis.fill_bits >= analysis.a0_bits - 1e-6

    @given(nests())
    @settings(max_examples=80)
    def test_reload_factor_monotone_in_buffer(self, nest):
        sizes = [0, 512, 4 * KB, 32 * KB, 1024 * KB, 10**8]
        for analyze in (
            analyze_weight_buffer,
            analyze_activation_l1,
            analyze_activation_l2,
        ):
            factors = [analyze(nest, s).reload_factor for s in sizes]
            assert factors == sorted(factors, reverse=True)

    @given(nests())
    @settings(max_examples=80)
    def test_infinite_buffer_no_penalty(self, nest):
        for analyze in (
            analyze_weight_buffer,
            analyze_activation_l1,
            analyze_activation_l2,
        ):
            assert analyze(nest, 10**12).reload_factor == 1.0

    @given(nests(), BUFFER_SIZES)
    @settings(max_examples=80)
    def test_penalty_free_capacity_is_sufficient(self, nest, buf):
        for analyze in (
            analyze_weight_buffer,
            analyze_activation_l1,
            analyze_activation_l2,
        ):
            threshold = analyze(nest, buf).min_penalty_free_capacity()
            assert analyze(nest, threshold).reload_factor == 1.0

    @given(nests())
    @settings(max_examples=80)
    def test_weight_a0_counts_distinct_weights(self, nest):
        analysis = analyze_weight_buffer(nest, 10**12)
        # A0 never exceeds ceil-padded distinct weights and never undercounts
        # the core's true share.
        block_bits = nest.layer.weights_for(nest.core_co) * 8
        assert analysis.a0_bits == block_bits * nest.c1 * nest.c2
