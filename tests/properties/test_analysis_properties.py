"""Property-based tests for the analysis utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.gantt import render_gantt
from repro.analysis.pareto import dominates, pareto_points
from repro.analysis.reporting import format_bar, format_scatter, format_table
from repro.analysis.roofline import Roofline
from repro.arch.config import build_hardware
from repro.sim.trace import Phase, Trace


@st.composite
def traces(draw):
    trace = Trace()
    n = draw(st.integers(1, 30))
    for _ in range(n):
        start = draw(st.floats(0, 1e6))
        duration = draw(st.floats(0.1, 1e4))
        trace.add(
            draw(st.integers(0, 7)),
            draw(st.integers(0, 20)),
            draw(st.sampled_from(list(Phase))),
            start,
            start + duration,
        )
    return trace


class TestGanttProperties:
    @given(traces(), st.integers(10, 200))
    @settings(max_examples=60)
    def test_render_never_crashes_and_covers_chiplets(self, trace, width):
        text = render_gantt(trace, width=width)
        chiplets = {r.chiplet for r in trace.records}
        assert text.count("chiplet") == len(chiplets)

    @given(traces())
    @settings(max_examples=40)
    def test_busy_cycles_sum_to_durations(self, trace):
        total = sum(trace.busy_cycles(phase) for phase in Phase)
        assert total == pytest.approx(sum(r.duration for r in trace.records))


class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=40
        )
    )
    @settings(max_examples=80)
    def test_front_members_mutually_nondominating(self, points):
        front = pareto_points(points, x=lambda p: p[0], y=lambda p: p[1])
        assert front
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b) or a == b

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=40
        )
    )
    @settings(max_examples=60)
    def test_every_point_dominated_by_some_front_member(self, points):
        front = pareto_points(points, x=lambda p: p[0], y=lambda p: p[1])
        for point in points:
            assert point in front or any(
                dominates(member, point) or member == point for member in front
            )


class TestRooflineProperties:
    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.sampled_from([1, 2, 4, 8]),
        st.floats(0.01, 1e6),
    )
    @settings(max_examples=80)
    def test_attainable_bounded_by_peak(self, chiplets, cores, intensity):
        roofline = Roofline(build_hardware(chiplets, cores, 8, 8))
        attainable = roofline.attainable(intensity)
        assert 0 <= attainable <= roofline.peak_macs_per_cycle

    @given(st.floats(0.01, 1e4), st.floats(0.01, 1e4))
    @settings(max_examples=60)
    def test_attainable_monotone_in_intensity(self, a, b):
        roofline = Roofline(build_hardware(4, 8, 8, 8))
        low, high = sorted((a, b))
        assert roofline.attainable(low) <= roofline.attainable(high) + 1e-9


class TestReportingProperties:
    @given(
        st.lists(
            st.lists(
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cc", "Cs")  # no control chars
                    ),
                    max_size=12,
                ),
                min_size=2,
                max_size=2,
            ),
            max_size=15,
        )
    )
    @settings(max_examples=60)
    def test_table_rows_aligned(self, rows):
        text = format_table(["a", "b"], rows)
        lines = text.splitlines()
        # Header + separator + one line per row.
        assert len(lines) == 2 + len(rows)

    @given(st.floats(0, 1e9), st.floats(1e-6, 1e9), st.integers(1, 120))
    @settings(max_examples=80)
    def test_bar_length_bounded(self, value, scale, width):
        assert len(format_bar(value, scale, width)) <= width

    @given(
        st.lists(
            st.tuples(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6), st.text(max_size=3)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60)
    def test_scatter_never_crashes(self, points):
        text = format_scatter(points, width=40, height=10)
        assert text
