"""Fuzzing the input boundary: hostile specs never escape the taxonomy.

The workload and hardware loaders are the surface that touches
user-authored JSON.  Whatever a mutated spec looks like -- wrong types,
missing fields, negative sizes, junk keys, nested garbage -- the only
exception allowed out of :mod:`repro.workloads.io` and
:mod:`repro.arch.io` is the matching :class:`repro.errors.DataError`
subclass (``WorkloadSpecError`` / ``HardwareSpecError``), carrying enough
context to name the offending entry.  A raw ``KeyError`` or
``TypeError`` reaching the CLI is a bug this suite exists to catch.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import case_study_hardware
from repro.arch.io import HardwareSpecError, hardware_from_dict, hardware_to_dict
from repro.errors import DataError, ReproError
from repro.workloads.io import WorkloadSpecError, layers_from_specs, load_model_file

# Junk values that exercise type confusion in every field position.
junk_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=8),
    st.lists(st.integers(0, 4), max_size=3),
    st.dictionaries(st.text(max_size=4), st.integers(0, 4), max_size=3),
)

field_names = st.one_of(
    st.sampled_from(
        [
            "name", "h", "w", "ci", "co", "kh", "kw", "stride", "padding",
            "groups", "m", "k", "n", "batch", "heads", "fc_in", "fc_out",
            "attn_seq", "attn_d", "attn_heads", "attn_kv",
            "chiplets", "cores", "lanes", "vector_size", "topology",
            "memory", "tech_overrides",
            "a_l1_bytes", "w_l1_bytes", "o_l1_bytes", "a_l2_bytes",
            "o_l2_bytes",
        ]
    ),
    st.text(max_size=12),
)


def _valid_conv_spec():
    return {"name": "c", "h": 8, "w": 8, "ci": 4, "co": 4, "kh": 3, "kw": 3}


@st.composite
def mutated_layer_specs(draw):
    """A mostly-valid conv spec with fields dropped, replaced, or added."""
    spec = _valid_conv_spec()
    for _ in range(draw(st.integers(1, 4))):
        action = draw(st.sampled_from(["drop", "replace", "add"]))
        if action == "drop" and spec:
            del spec[draw(st.sampled_from(sorted(spec)))]
        elif action == "replace" and spec:
            spec[draw(st.sampled_from(sorted(spec)))] = draw(junk_values)
        else:
            spec[draw(field_names)] = draw(junk_values)
    return spec


@st.composite
def mutated_hardware_dicts(draw):
    data = hardware_to_dict(case_study_hardware())
    for _ in range(draw(st.integers(1, 4))):
        action = draw(st.sampled_from(["drop", "replace", "add", "nest"]))
        if action == "drop":
            del data[draw(st.sampled_from(sorted(data)))]
        elif action == "replace":
            data[draw(st.sampled_from(sorted(data)))] = draw(junk_values)
        elif action == "nest" and isinstance(data.get("memory"), dict):
            key = draw(field_names)
            data["memory"] = dict(data["memory"], **{key: draw(junk_values)})
        else:
            data[draw(field_names)] = draw(junk_values)
    return data


class TestWorkloadFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(mutated_layer_specs(), min_size=0, max_size=4))
    def test_layers_from_specs_raises_only_workload_spec_error(self, specs):
        try:
            layers = layers_from_specs(specs)
        except WorkloadSpecError as exc:
            assert isinstance(exc, (DataError, ValueError))
            assert str(exc)  # never an empty message
        else:
            # A mutation can still be legal; then we must get real layers.
            assert layers and all(hasattr(l, "macs") for l in layers)

    @settings(max_examples=60, deadline=None)
    @given(junk_values)
    def test_non_dict_entries_are_rejected(self, entry):
        if isinstance(entry, dict):
            entry = [entry]  # force a non-dict spec into the list
        with pytest.raises(ReproError):
            layers_from_specs([_valid_conv_spec(), entry, _valid_conv_spec()])

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=64))
    def test_garbage_model_file(self, tmp_path_factory, text):
        path = tmp_path_factory.mktemp("fuzz") / "model.json"
        path.write_text(text)
        try:
            json.loads(text)
        except ValueError:
            with pytest.raises(WorkloadSpecError, match="model file"):
                load_model_file(path)
            return
        try:
            load_model_file(path)
        except ReproError:
            pass  # decodable JSON but an invalid model: still taxonomy-typed

    def test_error_names_the_layer_index(self):
        specs = [_valid_conv_spec(), {"h": 8}]
        with pytest.raises(WorkloadSpecError, match="layer 1"):
            layers_from_specs(specs)


class TestHardwareFuzz:
    @settings(max_examples=150, deadline=None)
    @given(mutated_hardware_dicts())
    def test_hardware_from_dict_raises_only_hardware_spec_error(self, data):
        try:
            hw = hardware_from_dict(data)
        except HardwareSpecError as exc:
            assert isinstance(exc, (DataError, ValueError))
            assert str(exc)
        else:
            assert hw.n_chiplets >= 1

    @settings(max_examples=50, deadline=None)
    @given(junk_values)
    def test_top_level_junk(self, data):
        try:
            hardware_from_dict(data)  # type: ignore[arg-type]
        except ReproError:
            pass
        except Exception as exc:  # pragma: no cover - the failure we hunt
            pytest.fail(f"non-taxonomy escape: {type(exc).__name__}: {exc}")
