"""Differential validation of the C3P analytics against brute force.

The C3P methodology (Section IV-B) *predicts* buffer traffic from critical
capacities and reload penalties: ``A_tot = A_0 * prod(P_k unsatisfied)``.
These tests check that prediction against an oracle that knows nothing of
critical points: it enumerates the loop nest iteration by iteration, plays
every buffer access through an LRU cache of the actual capacity, and
literally counts the fetched bits.

Construction notes, so the equivalence is exact rather than approximate:

* Loop extents are built by multiplication (layer dimensions are products
  of the drawn tile/loop factors), so every ceil-split divides evenly and
  the nest contains no remainder slack.
* The activation walks are restricted to 1x1-kernel, stride-1, non-grouped
  layers: without a halo, consecutive tiles read disjoint input windows and
  an LRU cache reproduces the analytical reuse regions exactly.  (With a
  halo, C3P deliberately counts the overlap once per consuming tile --
  a modeling choice, not a cache behaviour, so the oracle would diverge
  by design.)
* The weight walk has no such restriction: filter slices of distinct
  output-channel blocks are always disjoint, so 3x3 kernels are drawn too.

Every case probes the boundary buffer sizes (each critical capacity and
one byte below it) plus the empty and effectively-infinite buffers, which
is exactly where an off-by-one in either implementation would hide.
"""

import itertools
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import build_hardware
from repro.core.c3p import (
    analyze_activation_l1,
    analyze_activation_l2,
    analyze_weight_buffer,
)
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.primitives import LoopOrder, SpatialPrimitive, TemporalPrimitive
from repro.workloads.layer import ConvLayer, matmul

MAX_EXAMPLES = 200

ORDERS = st.sampled_from([LoopOrder.CHANNEL_PRIORITY, LoopOrder.PLANE_PRIORITY])


@st.composite
def nests(draw, kernels=(1,), channels=(1, 2), lanes_options=(1, 2)):
    """A (layer, hw, mapping) nest with exactly-dividing loop extents.

    Single chiplet, single core: the temporal nest is fully determined by
    the two temporal primitives, and the drawn factors are exactly the
    c1/w1/h1/c2/w2/h2 loop counts the analysis will see.
    """
    lanes = draw(st.sampled_from(lanes_options))
    core_h = draw(st.sampled_from([1, 2]))
    core_w = draw(st.sampled_from([1, 2]))
    c1 = draw(st.sampled_from([1, 2, 3]))
    w1 = draw(st.sampled_from([1, 2]))
    h1 = draw(st.sampled_from([1, 2]))
    c2 = draw(st.sampled_from([1, 2]))
    w2 = draw(st.sampled_from([1, 2]))
    h2 = draw(st.sampled_from([1, 2]))
    ci = draw(st.sampled_from(channels))
    k = draw(st.sampled_from(kernels))

    ho = core_h * h1 * h2
    wo = core_w * w1 * w2
    co = lanes * c1 * c2
    layer = ConvLayer(
        "gen",
        h=ho,
        w=wo,
        ci=ci,
        co=co,
        kh=k,
        kw=k,
        stride=1,
        padding=k // 2,
    )
    hw = build_hardware(1, 1, lanes, 4)
    mapping = Mapping(
        package_spatial=SpatialPrimitive.channel(1),
        package_temporal=TemporalPrimitive(
            draw(ORDERS), core_h * h1, core_w * w1, lanes * c1
        ),
        chiplet_spatial=SpatialPrimitive.channel(1),
        chiplet_temporal=TemporalPrimitive(draw(ORDERS), core_h, core_w, lanes),
    )
    nest = LoopNest(layer, hw, mapping)
    assert (nest.c1, nest.w1, nest.h1) == (c1, w1, h1)
    assert (nest.c2, nest.w2, nest.h2) == (c2, w2, h2)
    return nest


@st.composite
def matmul_nests(draw):
    """A GEMM nest with exactly-dividing loop extents.

    The matmul embedding is 1x1-kernel and stride-1 by construction, so it
    satisfies the activation walks' no-halo restriction automatically: the
    same LRU oracles must agree on GEMM-shaped nests without any carve-out.
    The GEMM's m rides H, its batch rides W, k rides CI, n rides CO.
    """
    lanes = draw(st.sampled_from([1, 2]))
    core_h = draw(st.sampled_from([1, 2]))
    core_w = draw(st.sampled_from([1, 2]))
    c1 = draw(st.sampled_from([1, 2, 3]))
    w1 = draw(st.sampled_from([1, 2]))
    h1 = draw(st.sampled_from([1, 2]))
    c2 = draw(st.sampled_from([1, 2]))
    w2 = draw(st.sampled_from([1, 2]))
    h2 = draw(st.sampled_from([1, 2]))
    k_dim = draw(st.sampled_from([1, 2, 4]))

    layer = matmul(
        "gen_mm",
        m=core_h * h1 * h2,
        k=k_dim,
        n=lanes * c1 * c2,
        batch=core_w * w1 * w2,
    )
    hw = build_hardware(1, 1, lanes, 4)
    mapping = Mapping(
        package_spatial=SpatialPrimitive.channel(1),
        package_temporal=TemporalPrimitive(
            draw(ORDERS), core_h * h1, core_w * w1, lanes * c1
        ),
        chiplet_spatial=SpatialPrimitive.channel(1),
        chiplet_temporal=TemporalPrimitive(draw(ORDERS), core_h, core_w, lanes),
    )
    nest = LoopNest(layer, hw, mapping)
    assert (nest.c1, nest.w1, nest.h1) == (c1, w1, h1)
    assert (nest.c2, nest.w2, nest.h2) == (c2, w2, h2)
    return nest


def block_positions(nest, level=None):
    """Every loop-index combination, innermost varying fastest.

    Yields ``{(kind, level): index}`` dicts -- the oracle derives each
    block's data footprint from these.  ``level=2`` restricts to the
    package-temporal loops (the A-L2 walk's granularity).
    """
    loops = [
        loop
        for loop in nest.loops()
        if level is None or loop.level == level
    ]
    # Outermost loop varies slowest: reverse for itertools.product.
    for combo in itertools.product(*[range(l.count) for l in reversed(loops)]):
        yield {
            (loop.kind, loop.level): index
            for loop, index in zip(reversed(loops), combo)
        }


def lru_fetched_bits(access_groups, capacity_elements, element_bits):
    """Play element accesses through an LRU cache; return fetched bits.

    Args:
        access_groups: Iterable of iterables of hashable element keys --
            one group per block, elements in deterministic order.
        capacity_elements: How many elements the buffer holds.
        element_bits: Bits fetched per missing element.
    """
    cache: OrderedDict = OrderedDict()
    misses = 0
    for group in access_groups:
        for key in group:
            if capacity_elements > 0 and key in cache:
                cache.move_to_end(key)
                continue
            misses += 1
            if capacity_elements > 0:
                cache[key] = None
                if len(cache) > capacity_elements:
                    cache.popitem(last=False)
    return misses * element_bits


def boundary_sizes(analysis):
    """Buffer sizes worth probing: 0, each Cc_k - 1 / Cc_k, and infinity."""
    sizes = {0, 10**9}
    for cp in analysis.critical_points:
        capacity = int(cp.capacity_bytes)
        sizes.add(capacity)
        if capacity > 0:
            sizes.add(capacity - 1)
    return sorted(sizes)


def element_bytes(nest) -> int:
    data_bytes = nest.hw.tech.data_bits // 8
    assert data_bytes * 8 == nest.hw.tech.data_bits
    return data_bytes


class TestWeightBufferDifferential:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        st.one_of(
            nests(kernels=(1, 3), channels=(1, 2), lanes_options=(1, 2)),
            matmul_nests(),
        )
    )
    def test_matches_lru_oracle(self, nest):
        data_bytes = element_bytes(nest)
        block_elems = int(nest.layer.weights_for(nest.core_co))

        def accesses():
            # A core block touches its (c1, c2) filter slice once per
            # element; W/H loops revisit the same slice.
            for pos in block_positions(nest):
                slice_key = (pos[("C", 1)], pos[("C", 2)])
                yield ((slice_key, e) for e in range(block_elems))

        for buffer_bytes in boundary_sizes(analyze_weight_buffer(nest, 0)):
            analysis = analyze_weight_buffer(nest, buffer_bytes)
            oracle_bits = lru_fetched_bits(
                accesses(),
                buffer_bytes // data_bytes,
                nest.hw.tech.data_bits,
            )
            assert analysis.fill_bits == pytest.approx(oracle_bits), (
                f"weight walk diverged at buffer={buffer_bytes} B "
                f"on {nest.describe()}"
            )


class TestActivationL1Differential:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        st.one_of(
            nests(kernels=(1,), channels=(1, 2), lanes_options=(1, 2)),
            matmul_nests(),
        )
    )
    def test_matches_lru_oracle(self, nest):
        data_bytes = element_bytes(nest)
        window_elems = nest.core_ho * nest.core_wo * nest.layer.ci

        def accesses():
            # With a 1x1 kernel each planar position reads a disjoint
            # input window of every input channel; C loops revisit it.
            for pos in block_positions(nest):
                planar_key = (
                    pos[("W", 1)],
                    pos[("H", 1)],
                    pos[("W", 2)],
                    pos[("H", 2)],
                )
                yield ((planar_key, e) for e in range(window_elems))

        for buffer_bytes in boundary_sizes(analyze_activation_l1(nest, 0)):
            analysis = analyze_activation_l1(nest, buffer_bytes)
            oracle_bits = lru_fetched_bits(
                accesses(),
                buffer_bytes // data_bytes,
                nest.hw.tech.data_bits,
            )
            assert analysis.fill_bits == pytest.approx(oracle_bits), (
                f"A-L1 walk diverged at buffer={buffer_bytes} B "
                f"on {nest.describe()}"
            )


class TestActivationL2Differential:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        st.one_of(
            nests(kernels=(1,), channels=(1, 2), lanes_options=(1, 2)),
            matmul_nests(),
        )
    )
    def test_matches_lru_oracle(self, nest):
        data_bytes = element_bytes(nest)
        window_elems = nest.tile_ho * nest.tile_wo * nest.layer.ci

        def accesses():
            # A-L2 operates at chiplet-workload granularity: only the
            # package-temporal loops exist, C2 revisits the tile window.
            for pos in block_positions(nest, level=2):
                planar_key = (pos[("W", 2)], pos[("H", 2)])
                yield ((planar_key, e) for e in range(window_elems))

        for buffer_bytes in boundary_sizes(analyze_activation_l2(nest, 0)):
            analysis = analyze_activation_l2(nest, buffer_bytes)
            oracle_bits = lru_fetched_bits(
                accesses(),
                buffer_bytes // data_bytes,
                nest.hw.tech.data_bits,
            )
            assert analysis.fill_bits == pytest.approx(oracle_bits), (
                f"A-L2 walk diverged at buffer={buffer_bytes} B "
                f"on {nest.describe()}"
            )
