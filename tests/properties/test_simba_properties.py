"""Property-based tests for the Simba baseline model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import build_hardware
from repro.simba.config import grid_options
from repro.simba.dataflow import evaluate_grid, evaluate_simba


@st.composite
def layers(draw):
    from repro.workloads.layer import ConvLayer

    groups = draw(st.sampled_from([1, 1, 1, 8]))
    base = draw(st.sampled_from([8, 32, 64]))
    return ConvLayer(
        name="prop",
        h=draw(st.sampled_from([14, 28, 56])),
        w=draw(st.sampled_from([14, 28])),
        ci=base * groups if groups > 1 else base,
        co=base * groups if groups > 1 else draw(st.sampled_from([16, 64, 128])),
        kh=draw(st.sampled_from([1, 3])),
        kw=draw(st.sampled_from([1, 3])),
        stride=1,
        padding=1,
        groups=groups,
    )


@st.composite
def hardware(draw):
    return build_hardware(
        draw(st.sampled_from([1, 2, 4])),
        draw(st.sampled_from([2, 4, 8])),
        8,
        8,
    )


class TestSimbaInvariants:
    @given(layers(), hardware())
    @settings(max_examples=60, deadline=None)
    def test_energy_positive_all_grids(self, layer, hw):
        for grid in grid_options(hw.n_chiplets, hw.n_cores, layer):
            report = evaluate_grid(layer, hw, grid)
            assert report.energy_pj > 0
            assert report.cycles > 0
            assert 0 < report.utilization <= 1
            for value in report.energy.as_dict().values():
                assert value >= 0

    @given(layers(), hardware())
    @settings(max_examples=40, deadline=None)
    def test_best_grid_is_minimum(self, layer, hw):
        best = evaluate_simba(layer, hw)
        for grid in grid_options(hw.n_chiplets, hw.n_cores, layer):
            assert best.energy_pj <= evaluate_grid(layer, hw, grid).energy_pj + 1e-6

    @given(layers(), hardware())
    @settings(max_examples=40, deadline=None)
    def test_channel_splits_respect_layer(self, layer, hw):
        for grid in grid_options(hw.n_chiplets, hw.n_cores, layer):
            assert grid.ci_ways <= max(layer.ci_per_group, 1) or grid.ci_ways <= layer.ci
            assert grid.co_ways <= layer.co or grid.co_ways <= hw.n_chiplets * hw.n_cores

    @given(layers(), hardware())
    @settings(max_examples=40, deadline=None)
    def test_weights_fetched_at_least_once(self, layer, hw):
        report = evaluate_simba(layer, hw)
        weight_pj = layer.weight_elements * 8 * hw.tech.dram_energy_pj_per_bit
        assert report.energy.dram_pj >= weight_pj * 0.99

    @given(layers(), hardware())
    @settings(max_examples=30, deadline=None)
    def test_cycles_at_least_ideal(self, layer, hw):
        report = evaluate_simba(layer, hw)
        assert report.cycles * hw.total_macs >= layer.macs * 0.99
