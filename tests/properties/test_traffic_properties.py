"""Property-based tests for traffic-assembly invariants."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import build_hardware
from repro.core.loopnest import LoopNest
from repro.core.primitives import RotationKind
from repro.core.serialize import mapping_from_dict, mapping_to_dict
from repro.core.space import MappingSpace, SearchProfile
from repro.core.traffic import compute_traffic
from repro.workloads.layer import ConvLayer


@st.composite
def cases(draw):
    """A random (layer, hw, valid mapping) triple drawn from the space."""
    layer = ConvLayer(
        name="prop",
        h=draw(st.sampled_from([14, 28, 56])),
        w=draw(st.sampled_from([14, 28])),
        ci=draw(st.sampled_from([8, 64])),
        co=draw(st.sampled_from([32, 128])),
        kh=draw(st.sampled_from([1, 3])),
        kw=draw(st.sampled_from([1, 3])),
        stride=1,
        padding=draw(st.sampled_from([0, 1])),
    )
    hw = build_hardware(
        draw(st.sampled_from([2, 4])),
        draw(st.sampled_from([2, 4])),
        8,
        8,
    )
    space = MappingSpace(hw, SearchProfile.FAST)
    candidates = [
        m
        for m in space.unique_candidates(layer)
        if LoopNest(layer, hw, m).is_valid()
    ]
    if not candidates:
        return None
    mapping = candidates[draw(st.integers(0, len(candidates) - 1))]
    return layer, hw, mapping


class TestTrafficInvariants:
    @given(cases())
    @settings(max_examples=60, deadline=None)
    def test_all_traffic_non_negative(self, case):
        if case is None:
            return
        layer, hw, mapping = case
        report, _ = compute_traffic(LoopNest(layer, hw, mapping))
        for name in report.__dataclass_fields__:
            assert getattr(report, name) >= 0, name

    @given(cases())
    @settings(max_examples=60, deadline=None)
    def test_output_traffic_exact(self, case):
        if case is None:
            return
        layer, hw, mapping = case
        report, _ = compute_traffic(LoopNest(layer, hw, mapping))
        assert report.dram_output_bits == layer.output_elements * 8

    @given(cases())
    @settings(max_examples=60, deadline=None)
    def test_weight_dram_at_least_unique(self, case):
        if case is None:
            return
        layer, hw, mapping = case
        report, _ = compute_traffic(LoopNest(layer, hw, mapping))
        # Rotation never drops below one DRAM fetch of each distinct weight.
        assert report.dram_weight_bits >= layer.weight_elements * 8 * 0.99

    @given(cases())
    @settings(max_examples=40, deadline=None)
    def test_rotation_trade_identity(self, case):
        """Rotation moves exactly (N_P - 1) x the DRAM savings to the ring."""
        if case is None:
            return
        layer, hw, mapping = case
        if mapping.rotation is RotationKind.NONE or hw.n_chiplets == 1:
            return
        nest = LoopNest(layer, hw, mapping)
        rotated, _ = compute_traffic(nest)
        plain, _ = compute_traffic(
            LoopNest(layer, hw, dataclasses.replace(mapping, rotation=RotationKind.NONE))
        )
        n = hw.n_chiplets
        if mapping.rotation is RotationKind.ACTIVATIONS:
            saved = plain.dram_input_bits - rotated.dram_input_bits
        else:
            saved = plain.dram_weight_bits - rotated.dram_weight_bits
        assert rotated.d2d_bit_hops - plain.d2d_bit_hops == (
            saved / (n - 1) * (n - 1) if n > 1 else 0
        )
        assert saved >= 0

    @given(cases())
    @settings(max_examples=60, deadline=None)
    def test_mapping_serialization_round_trip(self, case):
        if case is None:
            return
        _, _, mapping = case
        assert mapping_from_dict(mapping_to_dict(mapping)) == mapping
