"""Property-based tests for cost-model and simulator invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch.config import build_hardware
from repro.arch.memory import LinearFit
from repro.core.cost import (
    CostReport,
    EnergyBreakdown,
    InvalidMappingError,
    evaluate_mapping,
    model_cost,
)
from repro.core.mapper import Mapper
from repro.core.space import MappingSpace, SearchProfile
from repro.sim.resources import BandwidthResource
from repro.sim.runtime import simulate_runtime
from repro.workloads.layer import ConvLayer


@st.composite
def layer_and_hw(draw):
    layer = ConvLayer(
        name="prop",
        h=draw(st.sampled_from([14, 28, 56])),
        w=draw(st.sampled_from([14, 28])),
        ci=draw(st.sampled_from([3, 16, 64])),
        co=draw(st.sampled_from([16, 64, 128])),
        kh=draw(st.sampled_from([1, 3])),
        kw=draw(st.sampled_from([1, 3])),
        stride=draw(st.sampled_from([1, 2])),
        padding=1,
    )
    hw = build_hardware(
        draw(st.sampled_from([1, 2, 4])),
        draw(st.sampled_from([1, 2, 4])),
        draw(st.sampled_from([4, 8])),
        draw(st.sampled_from([4, 8])),
    )
    return layer, hw


class TestEvaluationInvariants:
    @given(layer_and_hw())
    @settings(max_examples=40, deadline=None)
    def test_every_candidate_energy_positive_and_util_bounded(self, pair):
        layer, hw = pair
        space = MappingSpace(hw, SearchProfile.MINIMAL)
        for mapping in space.unique_candidates(layer):
            try:
                report = evaluate_mapping(layer, hw, mapping)
            except InvalidMappingError:
                continue
            assert report.energy_pj > 0
            assert 0 < report.utilization <= 1.0
            assert report.cycles * hw.total_macs >= layer.macs
            for value in report.energy.as_dict().values():
                assert value >= 0

    @given(layer_and_hw())
    @settings(max_examples=25, deadline=None)
    def test_mapper_beats_every_candidate(self, pair):
        layer, hw = pair
        mapper = Mapper(hw=hw, profile=SearchProfile.MINIMAL)
        try:
            best = mapper.search_layer(layer)
        except InvalidMappingError:
            return
        space = MappingSpace(hw, SearchProfile.MINIMAL)
        for mapping in space.unique_candidates(layer):
            try:
                report = evaluate_mapping(layer, hw, mapping)
            except InvalidMappingError:
                continue
            assert best.best.energy_pj <= report.energy_pj + 1e-6

    @given(layer_and_hw())
    @settings(max_examples=15, deadline=None)
    def test_simulated_runtime_at_least_compute(self, pair):
        layer, hw = pair
        mapper = Mapper(hw=hw, profile=SearchProfile.MINIMAL)
        try:
            best = mapper.search_layer(layer)
        except InvalidMappingError:
            return
        result = simulate_runtime(layer, hw, best.mapping)
        assert result.cycles >= best.best.cycles


class TestResourceInvariants:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 10000)), min_size=1, max_size=20
        ),
        st.floats(1, 1000),
    )
    def test_fifo_completions_monotone(self, requests, bandwidth):
        resource = BandwidthResource("r", bandwidth)
        completions = []
        clock = 0.0
        for arrival_delta, bits in requests:
            clock += arrival_delta
            completions.append(resource.request(clock, bits))
        assert completions == sorted(completions)

    @given(st.floats(0, 1000), st.floats(0, 1e6), st.floats(1, 1e4))
    def test_completion_at_least_arrival_plus_service(self, arrival, bits, bw):
        resource = BandwidthResource("r", bw)
        done = resource.request(arrival, bits)
        assert done >= arrival + bits / bw - 1e-9


#: Component magnitudes spanning pJ noise to mJ totals -- the spread that
#: makes naive left-fold float addition order-sensitive.
_COMPONENT_PJ = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


@st.composite
def breakdown_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [
        EnergyBreakdown(*(draw(_COMPONENT_PJ) for _ in range(8))) for _ in range(n)
    ]


class TestEnergyAggregationInvariance:
    """Model/sweep totals must not depend on the layer summation order.

    ``EnergyBreakdown.fsum`` is the reduction contract: compensated sums are
    the correctly rounded component totals, so any permutation of the same
    summands yields bit-identical results -- the property a naive
    ``__add__`` left fold does not have.
    """

    @given(breakdown_lists(), st.randoms())
    @settings(max_examples=200, deadline=None)
    def test_fsum_is_permutation_invariant(self, breakdowns, rng):
        reference = EnergyBreakdown.fsum(breakdowns)
        shuffled = list(breakdowns)
        rng.shuffle(shuffled)
        permuted = EnergyBreakdown.fsum(shuffled)
        assert permuted.as_dict() == reference.as_dict()
        assert permuted.total_pj == reference.total_pj

    @given(breakdown_lists(), st.randoms())
    @settings(max_examples=100, deadline=None)
    def test_model_cost_is_permutation_invariant(self, breakdowns, rng):
        hw = build_hardware(1, 1, 8, 8)
        reports = [
            CostReport(
                layer=None,
                mapping=None,
                energy=breakdown,
                traffic=None,
                cycles=1000 + i,
                utilization=1.0,
                o_l2_bytes=0,
            )
            for i, breakdown in enumerate(breakdowns)
        ]
        energy, cycles, edp = model_cost(reports, hw)
        shuffled = list(reports)
        rng.shuffle(shuffled)
        energy2, cycles2, edp2 = model_cost(shuffled, hw)
        assert energy2.as_dict() == energy.as_dict()
        assert cycles2 == cycles
        assert edp2 == edp


class TestLinearFitProperties:
    @given(
        st.floats(-100, 100),
        st.floats(-10, 10),
        st.lists(st.floats(0.1, 500), min_size=2, max_size=30, unique=True),
    )
    @settings(max_examples=500, deadline=None)
    def test_exact_line_recovered(self, intercept, slope, xs):
        # A well-conditioned fit needs an x-spread comfortably above the
        # float noise floor; below that LinearFit.fit raises (covered by
        # tests/arch/test_memory.py) rather than returning a garbage slope.
        assume(max(xs) - min(xs) >= 1e-3 * max(abs(x) for x in xs))
        ys = [intercept + slope * x for x in xs]
        fit = LinearFit.fit(xs, ys)
        assert abs(fit.intercept - intercept) < 1e-6 + 1e-6 * abs(intercept)
        assert abs(fit.slope - slope) < 1e-6 + 1e-6 * abs(slope)

    @given(
        st.floats(-100, 100),
        st.floats(-10, 10),
        st.lists(st.floats(0.1, 500), min_size=2, max_size=30, unique=True),
    )
    @settings(max_examples=500, deadline=None)
    def test_degenerate_or_finite_never_garbage(self, intercept, slope, xs):
        # Any unique-x input either fits (finite coefficients, r^2 in [0, 1])
        # or raises ValueError -- never NaN/inf, never an unclamped r^2.
        ys = [intercept + slope * x for x in xs]
        try:
            fit = LinearFit.fit(xs, ys)
        except ValueError:
            return
        assert math.isfinite(fit.slope) and math.isfinite(fit.intercept)
        assert 0.0 <= fit.r_squared <= 1.0

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(-100, 100)),
            min_size=3,
            max_size=30,
        )
    )
    def test_r_squared_clamped(self, points):
        xs = [p[0] + i for i, p in enumerate(points)]  # ensure x-variance
        ys = [p[1] for p in points]
        fit = LinearFit.fit(xs, ys)
        assert 0.0 <= fit.r_squared <= 1.0
