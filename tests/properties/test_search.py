"""Property-based tests for the guided search engine's safety invariants.

Three contracts from the guided-DSE design:

* **Admissibility** -- :func:`repro.core.search.edp_lower_bound` never
  exceeds the actual EDP of any valid design, so dominance pruning (drop
  a candidate whose bound beats the incumbent's actual) can never discard
  the true optimum.
* **Congruence** -- mapping candidates that share a
  :meth:`~repro.core.space.MappingSpace.congruence_key` produce identical
  cost-model output, so symmetry dedup changes candidate counts but never
  the search result.
* **Reproducibility** -- a seeded guided run is a pure function of
  (seed, space, models): replaying it yields byte-identical trials.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import build_hardware
from repro.core.cost import InvalidMappingError, evaluate_mapping
from repro.core.dse import DesignSpace, _evaluate_point
from repro.core.search import GuidedStrategy, edp_lower_bound, guided_explore
from repro.core.space import MappingSpace, SearchProfile
from repro.workloads.layer import ConvLayer

PROP_SPACE = DesignSpace(
    vector_sizes=(2, 4),
    lanes=(2, 4),
    cores=(1, 2),
    chiplets=(1, 2),
    o_l1_per_lane_bytes=(48, 96),
    a_l1_kb=(1, 4),
    w_l1_kb=(2, 8),
    a_l2_kb=(32, 64),
)
PROP_MACS = 16


@st.composite
def prop_layer(draw):
    return ConvLayer(
        name="prop",
        h=draw(st.sampled_from([7, 14, 28])),
        w=draw(st.sampled_from([7, 14])),
        ci=draw(st.sampled_from([3, 16, 32])),
        co=draw(st.sampled_from([16, 32])),
        kh=draw(st.sampled_from([1, 3])),
        kw=draw(st.sampled_from([1, 3])),
        stride=draw(st.sampled_from([1, 2])),
        padding=1,
    )


@st.composite
def prop_hardware(draw):
    from repro.core.search import Lattice

    lattice = Lattice(PROP_SPACE, PROP_MACS)
    index = draw(st.sampled_from(lattice.scan()))
    cand = lattice.candidate(index)
    return build_hardware(*cand.comp, memory=cand.memory)


class TestDominancePruningSafety:
    @given(prop_hardware(), prop_layer())
    @settings(max_examples=30, deadline=None)
    def test_lower_bound_is_admissible(self, hw, layer):
        """bound <= actual EDP, the exact premise the pruning rule needs.

        If this holds for every (hardware, workload) pair, a pruned
        candidate (bound > incumbent actual) can never have beaten the
        incumbent, so pruning never discards the true optimum.
        """
        models = {"prop": [layer]}
        try:
            energy, cycles, _cache = _evaluate_point(
                hw, models, SearchProfile.MINIMAL
            )
        except InvalidMappingError:
            return  # no legal mapping: nothing for pruning to discard
        actual_edp = (
            energy["prop"] * 1e-12
            * cycles["prop"] * hw.tech.cycle_time_ns() * 1e-9
        )
        bound = edp_lower_bound(hw, [layer])
        assert bound <= actual_edp * (1 + 1e-12)


class TestDedupCongruence:
    @given(prop_hardware(), prop_layer())
    @settings(max_examples=15, deadline=None)
    def test_congruent_candidates_cost_identically(self, hw, layer):
        """Every congruence class is cost-homogeneous.

        Group the *raw* candidate stream by congruence key and evaluate
        every member: all members of a class must either all be invalid
        or all produce the same (energy, cycles, utilization) triple --
        which is what makes keep-first dedup result-preserving.
        """
        space = MappingSpace(hw, SearchProfile.MINIMAL)
        classes: dict[tuple, list] = {}
        for mapping in space.candidates(layer):
            classes.setdefault(
                space.congruence_key(layer, mapping), []
            ).append(mapping)
        multi = {k: v for k, v in classes.items() if len(v) > 1}
        for members in multi.values():
            outcomes = []
            for mapping in members:
                try:
                    report = evaluate_mapping(layer, hw, mapping)
                except InvalidMappingError:
                    outcomes.append(None)
                    continue
                outcomes.append(
                    (report.energy_pj, report.cycles, report.utilization)
                )
            assert len(set(outcomes)) == 1, outcomes

    @given(prop_hardware(), prop_layer())
    @settings(max_examples=15, deadline=None)
    def test_dedup_keeps_one_representative_per_class(self, hw, layer):
        space = MappingSpace(hw, SearchProfile.MINIMAL)
        unique = space.unique_candidates(layer)
        keys = [space.congruence_key(layer, m) for m in unique]
        assert len(keys) == len(set(keys))
        all_keys = {
            space.congruence_key(layer, m) for m in space.candidates(layer)
        }
        assert set(keys) == all_keys


class TestSeededReproducibility:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_strategy_trajectory_replays(self, seed):
        """Two strategies with one seed propose identical sequences when
        told identical results (a synthetic deterministic objective)."""
        from repro.core.search import Trial

        def drive(strategy):
            proposed = []
            for _ in range(6):
                batch = strategy.ask(8)
                if not batch:
                    break
                proposed.extend(cand.index for cand in batch)
                trials = [
                    Trial(cand, "evaluated", None, edp=float(sum(cand.index)))
                    for cand in batch
                ]
                strategy.tell(trials)
            return proposed

        a = drive(GuidedStrategy(PROP_SPACE, PROP_MACS, trials=64, seed=seed))
        b = drive(GuidedStrategy(PROP_SPACE, PROP_MACS, trials=64, seed=seed))
        assert a == b

    @given(st.integers(min_value=0, max_value=999))
    @settings(max_examples=3, deadline=None)
    def test_guided_explore_replays_end_to_end(self, seed):
        models = {
            "prop": [
                ConvLayer("c", h=14, w=14, ci=16, co=32, kh=3, kw=3, padding=1)
            ]
        }

        def run():
            points = guided_explore(
                models,
                PROP_MACS,
                space=PROP_SPACE,
                profile=SearchProfile.MINIMAL,
                trials=12,
                seed=seed,
                jobs=1,
            )
            return [
                (
                    p.label,
                    p.valid,
                    tuple(p.errors),
                    tuple(sorted(p.energy_pj.items())),
                    tuple(sorted(p.cycles.items())),
                )
                for p in points
            ]

        assert run() == run()
