"""Differential validation of the batch kernel against the scalar oracle.

The scalar pipeline (``c3p`` -> ``traffic`` -> ``cost``) is the golden
reference; the struct-of-arrays kernel (:mod:`repro.core.batch`) promises
*bit-level* agreement with it (see the module docstring's contract).  These
tests draw random (layer, hardware) pairs -- dense, strided, 1x1, grouped
and depthwise layers alike -- enumerate the real candidate space, and
compare every intermediate the kernel exposes against the scalar value with
exact ``==``, never ``approx``:

* the validity mask against ``InvalidMappingError``,
* the three C3P walk outputs (A_0, reload factor, fill bits),
* every traffic field, every energy component, cycles, O-L2 sizing, EDP,
* and the winner index against the scalar strict-``<`` first-minimum scan.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import build_hardware
from repro.arch.topology import Topology
from repro.core import batch
from repro.core.c3p import (
    analyze_activation_l1,
    analyze_activation_l2,
    analyze_weight_buffer,
)
from repro.core.cost import InvalidMappingError, evaluate_mapping
from repro.core.loopnest import LoopNest
from repro.core.space import MappingSpace, SearchProfile
from repro.core.traffic import weight_group_size
from repro.workloads.layer import ConvLayer, matmul
from repro.workloads.transformer import AttentionLayer

pytestmark = pytest.mark.skipif(
    not batch.numpy_available(), reason="numpy backend unavailable"
)

MAX_EXAMPLES = 25


@st.composite
def layer_and_hw(draw):
    """A random layer (possibly grouped/depthwise) on a random machine."""
    groups = draw(st.sampled_from([1, 1, 1, 2, 4, 16]))
    ci = groups * draw(st.sampled_from([1, 2, 4]))
    co = groups * draw(st.sampled_from([1, 2, 8]))
    kernel = draw(st.sampled_from([1, 3, 5]))
    layer = ConvLayer(
        name="prop",
        h=draw(st.sampled_from([7, 14, 28, 56])),
        w=draw(st.sampled_from([7, 14, 28])),
        ci=ci,
        co=co,
        kh=kernel,
        kw=kernel,
        stride=draw(st.sampled_from([1, 2])),
        padding=kernel // 2,
        groups=groups,
    )
    hw = build_hardware(
        draw(st.sampled_from([1, 2, 4])),
        draw(st.sampled_from([1, 2, 4])),
        draw(st.sampled_from([4, 8])),
        draw(st.sampled_from([4, 8])),
    )
    profile = draw(st.sampled_from([SearchProfile.MINIMAL, SearchProfile.FAST]))
    return layer, hw, profile


@st.composite
def transformer_layer_and_hw(draw):
    """A random GEMM (dense, multi-head, or attention sublayer) on a
    random machine with a random package topology."""
    kind = draw(st.sampled_from(["dense", "multi_head", "gemv", "attention"]))
    if kind == "attention":
        attn = AttentionLayer(
            name="prop_attn",
            seq=draw(st.sampled_from([1, 8, 32])),
            d_model=draw(st.sampled_from([32, 64, 128])),
            heads=draw(st.sampled_from([2, 4])),
            kv_seq=draw(st.sampled_from([None, 16, 64])),
        )
        layer = draw(st.sampled_from(list(attn.sublayers())))
    elif kind == "multi_head":
        heads = draw(st.sampled_from([2, 4]))
        layer = matmul(
            "prop_mh",
            m=draw(st.sampled_from([8, 32, 64])),
            k=heads * draw(st.sampled_from([8, 16])),
            n=heads * draw(st.sampled_from([8, 32])),
            heads=heads,
        )
    elif kind == "gemv":
        layer = matmul(
            "prop_gemv",
            m=1,
            k=draw(st.sampled_from([64, 256, 1024])),
            n=draw(st.sampled_from([32, 256])),
        )
    else:
        layer = matmul(
            "prop_mm",
            m=draw(st.sampled_from([8, 32, 128])),
            k=draw(st.sampled_from([16, 64, 256])),
            n=draw(st.sampled_from([16, 64])),
            batch=draw(st.sampled_from([1, 1, 4])),
        )
    hw = build_hardware(
        draw(st.sampled_from([1, 2, 4])),
        draw(st.sampled_from([1, 2, 4])),
        draw(st.sampled_from([4, 8])),
        draw(st.sampled_from([4, 8])),
        topology=draw(
            st.sampled_from([Topology.RING, Topology.MESH, Topology.SWITCH])
        ),
    )
    profile = draw(st.sampled_from([SearchProfile.MINIMAL, SearchProfile.FAST]))
    return layer, hw, profile


class TestBatchScalarDifferential:
    @given(layer_and_hw())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_every_candidate_bit_identical(self, case):
        self._assert_bit_identical(*case)

    @given(transformer_layer_and_hw())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_transformer_candidates_bit_identical(self, case):
        # GEMM layers (including grouped multi-head einsums and GEMVs) on
        # every topology keep the same exact-equality contract.
        self._assert_bit_identical(*case)

    def _assert_bit_identical(self, layer, hw, profile):
        candidates = MappingSpace(hw, profile).unique_candidates(layer)
        if not candidates:
            return
        result = batch.evaluate_batch(layer, hw, candidates)
        assert len(result) == len(candidates)

        for i, mapping in enumerate(candidates):
            try:
                report = evaluate_mapping(layer, hw, mapping)
            except InvalidMappingError:
                assert not bool(result.valid[i]), (
                    f"scalar rejects candidate {i} ({mapping.describe()}) "
                    "but the batch kernel marks it valid"
                )
                continue
            assert bool(result.valid[i]), (
                f"scalar accepts candidate {i} ({mapping.describe()}) "
                "but the batch kernel masks it invalid"
            )

            # C3P walk outputs against the per-candidate analyses.
            nest = LoopNest(layer, hw, mapping)
            weight = analyze_weight_buffer(
                nest, hw.memory.w_l1_bytes * weight_group_size(mapping)
            )
            assert float(result.weight_a0_bits[i]) == weight.a0_bits
            assert float(result.weight_reload[i]) == weight.reload_factor
            assert float(result.weight_fill_bits[i]) == weight.fill_bits
            a_l1 = analyze_activation_l1(nest, hw.memory.a_l1_bytes)
            assert float(result.a_l1_a0_bits[i]) == a_l1.a0_bits
            assert float(result.a_l1_reload[i]) == a_l1.reload_factor
            assert float(result.a_l1_fill_bits[i]) == a_l1.fill_bits
            a_l2 = analyze_activation_l2(nest, hw.memory.a_l2_bytes)
            assert float(result.a_l2_a0_bits[i]) == a_l2.a0_bits
            assert float(result.a_l2_reload[i]) == a_l2.reload_factor
            assert float(result.a_l2_fill_bits[i]) == a_l2.fill_bits

            # Traffic assembly, field by field.
            t = report.traffic
            assert float(result.dram_input_bits[i]) == t.dram_input_bits
            assert float(result.dram_weight_bits[i]) == t.dram_weight_bits
            assert result.dram_output_bits == t.dram_output_bits
            assert float(result.d2d_bit_hops[i]) == t.d2d_bit_hops
            assert float(result.a_l2_write_bits[i]) == t.a_l2_write_bits
            assert float(result.a_l2_read_bits[i]) == t.a_l2_read_bits
            assert float(result.a_l1_write_bits[i]) == t.a_l1_write_bits
            assert result.a_l1_read_bits == t.a_l1_read_bits
            assert float(result.w_l1_write_bits[i]) == t.w_l1_write_bits
            assert float(result.w_l1_read_bits[i]) == t.w_l1_read_bits
            assert result.rf_rmw_bits == t.rf_rmw_bits
            assert result.rf_drain_bits == t.rf_drain_bits

            # Energy components, cycles, O-L2 sizing, EDP.
            e = report.energy
            assert float(result.dram_pj[i]) == e.dram_pj
            assert float(result.d2d_pj[i]) == e.d2d_pj
            assert float(result.a_l2_pj[i]) == e.a_l2_pj
            assert float(result.o_l2_pj[i]) == e.o_l2_pj
            assert float(result.a_l1_pj[i]) == e.a_l1_pj
            assert float(result.w_l1_pj[i]) == e.w_l1_pj
            assert result.rf_pj == e.rf_pj
            assert result.mac_pj == e.mac_pj
            assert float(result.energy_pj[i]) == report.energy_pj
            assert int(result.o_l2_bytes[i]) == report.o_l2_bytes
            assert int(result.cycles[i]) == report.cycles
            assert float(result.edp[i]) == report.edp(hw)

    @given(st.one_of(layer_and_hw(), transformer_layer_and_hw()))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_winner_matches_scalar_strict_less_scan(self, case):
        layer, hw, profile = case
        candidates = MappingSpace(hw, profile).unique_candidates(layer)
        if not candidates:
            return
        result = batch.evaluate_batch(layer, hw, candidates)
        for objective, score_of in (
            ("energy", lambda r: r.energy_pj),
            ("edp", lambda r: r.edp(hw)),
        ):
            winner, best_score = None, math.inf
            evaluated = invalid = 0
            for index, mapping in enumerate(candidates):
                try:
                    report = evaluate_mapping(layer, hw, mapping)
                except InvalidMappingError:
                    invalid += 1
                    continue
                evaluated += 1
                score = score_of(report)
                if score < best_score:
                    best_score, winner = score, index
            assert result.best_index(objective) == winner
            assert result.evaluated == evaluated
            assert result.invalid == invalid
