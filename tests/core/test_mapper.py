"""Tests for the post-design mapping search."""

import pytest

from repro.arch.config import case_study_hardware
from repro.core.cost import evaluate_mapping
from repro.core.mapper import Mapper, edp_objective, energy_objective, map_model
from repro.core.space import MappingSpace, SearchProfile
from repro.workloads.layer import ConvLayer


def common_layer(name="c"):
    return ConvLayer(name, h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


@pytest.fixture
def mapper():
    return Mapper(hw=case_study_hardware(), profile=SearchProfile.FAST)


class TestSearchLayer:
    def test_best_is_minimum_over_candidates(self, mapper):
        layer = common_layer()
        result = mapper.search_layer(layer)
        hw = case_study_hardware()
        space = MappingSpace(hw, SearchProfile.FAST)
        for mapping in space.unique_candidates(layer):
            try:
                report = evaluate_mapping(layer, hw, mapping)
            except Exception:
                continue
            assert result.best.energy_pj <= report.energy_pj + 1e-6

    def test_statistics_reported(self, mapper):
        result = mapper.search_layer(common_layer())
        assert result.candidates_evaluated > 0
        assert result.candidates_invalid >= 0

    def test_shape_cache_shares_search(self, mapper):
        first = mapper.search_layer(common_layer("conv_a"))
        second = mapper.search_layer(common_layer("conv_b"))
        assert second.best is first.best           # same evaluation reused
        assert second.layer.name == "conv_b"       # identity preserved

    def test_objective_changes_winner_criterion(self):
        hw = case_study_hardware()
        layer = common_layer()
        by_energy = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        by_edp = Mapper(
            hw=hw, profile=SearchProfile.FAST, objective=edp_objective
        ).search_layer(layer)
        assert by_edp.best.edp(hw) <= by_energy.best.edp(hw) + 1e-20

    def test_energy_objective_is_default(self, mapper):
        assert mapper.objective is energy_objective


class TestSearchModel:
    def test_maps_every_layer(self, mapper):
        layers = [common_layer(f"l{i}") for i in range(3)]
        results = mapper.search_model(layers)
        assert [r.layer.name for r in results] == ["l0", "l1", "l2"]

    def test_empty_model_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.search_model([])

    def test_map_model_wrapper(self):
        results = map_model(
            [common_layer()], case_study_hardware(), profile=SearchProfile.MINIMAL
        )
        assert len(results) == 1

    def test_exhaustive_at_least_as_good_as_minimal(self):
        hw = case_study_hardware()
        layer = common_layer()
        exhaustive = Mapper(hw=hw, profile=SearchProfile.EXHAUSTIVE).search_layer(layer)
        minimal = Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer)
        assert exhaustive.best.energy_pj <= minimal.best.energy_pj + 1e-6
