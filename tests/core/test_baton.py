"""Tests for the NN-Baton facade (pre-design and post-design flows)."""

import pytest

from repro.arch.config import case_study_hardware
from repro.core.baton import NNBaton
from repro.core.dse import DesignSpace
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


def tiny_layers():
    return [
        ConvLayer("c1", h=28, w=28, ci=32, co=64, kh=3, kw=3, stride=1, padding=1),
        ConvLayer("c2", h=14, w=14, ci=64, co=128, kh=1, kw=1),
        ConvLayer("c3", h=14, w=14, ci=64, co=128, kh=1, kw=1),  # repeated shape
    ]


SMALL_SPACE = DesignSpace(
    vector_sizes=(4, 8),
    lanes=(4, 8),
    cores=(2, 4),
    chiplets=(2, 4),
    o_l1_per_lane_bytes=(96,),
    a_l1_kb=(1, 4),
    w_l1_kb=(4, 18),
    a_l2_kb=(32, 64),
)


class TestPostDesign:
    def test_maps_whole_model(self):
        baton = NNBaton(profile=SearchProfile.FAST)
        result = baton.post_design(tiny_layers(), case_study_hardware())
        assert len(result.layers) == 3
        assert result.energy_pj > 0
        assert result.cycles > 0

    def test_totals_aggregate_layers(self):
        baton = NNBaton(profile=SearchProfile.FAST)
        result = baton.post_design(tiny_layers(), case_study_hardware())
        assert result.energy_pj == pytest.approx(
            sum(r.best.energy_pj for r in result.layers)
        )
        assert result.cycles == sum(r.best.cycles for r in result.layers)

    def test_mapping_table_lines(self):
        baton = NNBaton(profile=SearchProfile.MINIMAL)
        result = baton.post_design(tiny_layers(), case_study_hardware())
        table = result.mapping_table()
        assert len(table) == 3
        assert table[0].startswith("c1:")
        assert "pkg[" in table[0]

    def test_runtime_and_edp_consistent(self):
        baton = NNBaton(profile=SearchProfile.MINIMAL)
        result = baton.post_design(tiny_layers(), case_study_hardware())
        assert result.edp_js == pytest.approx(
            result.energy_pj * 1e-12 * result.runtime_s()
        )


class TestPreDesign:
    def test_recommends_a_point(self):
        baton = NNBaton()
        result = baton.pre_design(
            {"tiny": tiny_layers()},
            required_macs=256,
            space=SMALL_SPACE,
            memory_stride=4,
        )
        assert result.recommended is not None
        assert result.recommended.hw.total_macs == 256
        assert result.swept == len(result.points)

    def test_recommendation_is_edp_optimal(self):
        baton = NNBaton()
        result = baton.pre_design(
            {"tiny": tiny_layers()},
            required_macs=256,
            space=SMALL_SPACE,
            memory_stride=4,
        )
        for point in result.valid_points:
            assert result.recommended.edp("tiny") <= point.edp("tiny") + 1e-20

    def test_area_budget_filters_recommendation(self):
        baton = NNBaton()
        unconstrained = baton.pre_design(
            {"tiny": tiny_layers()},
            required_macs=256,
            space=SMALL_SPACE,
            memory_stride=4,
        )
        cap = min(p.chiplet_area_mm2 for p in unconstrained.valid_points) + 0.05
        constrained = baton.pre_design(
            {"tiny": tiny_layers()},
            required_macs=256,
            max_chiplet_mm2=cap,
            space=SMALL_SPACE,
            memory_stride=4,
        )
        assert constrained.recommended.chiplet_area_mm2 <= cap

    def test_primary_model_must_exist(self):
        baton = NNBaton()
        with pytest.raises(KeyError):
            baton.pre_design(
                {"tiny": tiny_layers()},
                required_macs=256,
                space=SMALL_SPACE,
                primary_model="missing",
            )

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            NNBaton().pre_design({}, required_macs=256)
