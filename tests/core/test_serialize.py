"""Tests for mapping serialization and the compiler report."""

import json

import pytest

from repro.arch.config import case_study_hardware
from repro.core.mapper import Mapper
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.core.serialize import (
    compiler_report,
    layer_from_dict,
    layer_to_dict,
    mapping_from_dict,
    mapping_to_dict,
)
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


def sample_mapping():
    return Mapping(
        package_spatial=SpatialPrimitive.channel(4),
        package_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 28, 28, 64),
        chiplet_spatial=SpatialPrimitive.hybrid(2, PlanarGrid(2, 2)),
        chiplet_temporal=TemporalPrimitive(LoopOrder.PLANE_PRIORITY, 8, 8, 8),
        rotation=RotationKind.ACTIVATIONS,
    )


def sample_layer():
    return ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


class TestMappingRoundTrip:
    def test_round_trip_identity(self):
        mapping = sample_mapping()
        assert mapping_from_dict(mapping_to_dict(mapping)) == mapping

    def test_json_serializable(self):
        text = json.dumps(mapping_to_dict(sample_mapping()))
        assert mapping_from_dict(json.loads(text)) == sample_mapping()

    def test_layer_round_trip(self):
        layer = sample_layer()
        assert layer_from_dict(layer_to_dict(layer)) == layer

    def test_grouped_layer_round_trip(self):
        dw = ConvLayer("dw", h=28, w=28, ci=32, co=32, kh=3, kw=3, padding=1, groups=32)
        assert layer_from_dict(layer_to_dict(dw)) == dw

    def test_invalid_rotation_rejected_on_load(self):
        data = mapping_to_dict(sample_mapping())
        data["rotation"] = "weights"  # incompatible with a C-type package
        with pytest.raises(ValueError):
            mapping_from_dict(data)


class TestCompilerReport:
    def test_report_structure(self):
        hw = case_study_hardware()
        layer = sample_layer()
        mapping = Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer).mapping
        report = compiler_report(layer, hw, mapping)
        assert report["layer"]["name"] == "c"
        assert len(report["loop_nest"]["loops_inner_to_outer"]) == 6
        assert report["loop_nest"]["core_tile"][2] <= hw.lanes
        assert report["sharing"]["ring_rotation"] == mapping.rotation.value

    def test_report_is_json_serializable(self):
        hw = case_study_hardware()
        layer = sample_layer()
        mapping = Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer).mapping
        json.dumps(compiler_report(layer, hw, mapping))

    def test_sharing_modes_reflect_partition(self):
        hw = case_study_hardware()
        report = compiler_report(sample_layer(), hw, sample_mapping())
        # H(C2 x P2x2): pool groups of 4 cores, 2 multicast groups.
        assert report["sharing"]["w_l1_pool_group_size"] == 4
        assert report["sharing"]["bus_multicast_groups"] == 2
