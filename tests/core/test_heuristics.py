"""Tests for the rule-based one-shot mapper."""

import pytest

from repro.arch.config import build_hardware, case_study_hardware
from repro.core.heuristics import heuristic_map_model, heuristic_mapping
from repro.core.loopnest import LoopNest
from repro.core.mapper import Mapper
from repro.core.primitives import PartitionDim, RotationKind
from repro.core.space import SearchProfile
from repro.workloads.extraction import LayerKind, representative_layers
from repro.workloads.layer import ConvLayer, fc_as_pointwise
from repro.workloads.registry import get_model


@pytest.fixture(scope="module")
def hw():
    return case_study_hardware()


class TestHeuristicRules:
    def test_activation_intensive_gets_plane_package(self, hw):
        layer = representative_layers(224)[LayerKind.ACTIVATION_INTENSIVE]
        mapping = heuristic_mapping(layer, hw)
        assert mapping.package_spatial.dim is PartitionDim.PLANE
        assert mapping.rotation is RotationKind.WEIGHTS

    def test_weight_intensive_gets_channel_package(self, hw):
        layer = representative_layers(224)[LayerKind.WEIGHT_INTENSIVE]
        mapping = heuristic_mapping(layer, hw)
        assert mapping.package_spatial.dim is PartitionDim.CHANNEL
        assert mapping.rotation is RotationKind.ACTIVATIONS

    def test_package_grid_bounds_conflict_degree(self, hw):
        from repro.core.partition import max_conflict_degree

        layer = representative_layers(224)[LayerKind.LARGE_KERNEL]
        mapping = heuristic_mapping(layer, hw)
        if mapping.package_spatial.dim is PartitionDim.PLANE:
            assert max_conflict_degree(layer, mapping.package_spatial.grid) <= 2

    def test_single_chiplet_never_rotates(self):
        hw = build_hardware(1, 8, 16, 16)
        layer = representative_layers(224)[LayerKind.COMMON]
        assert heuristic_mapping(layer, hw).rotation is RotationKind.NONE


class TestHeuristicLegality:
    @pytest.mark.parametrize("model", ["alexnet", "resnet50", "mobilenetv2"])
    def test_every_layer_of_every_model_is_legal(self, hw, model):
        for layer in get_model(model):
            mapping = heuristic_mapping(layer, hw)
            nest = LoopNest(layer, hw, mapping)
            assert nest.is_valid(), (layer.name, nest.validity_errors())

    def test_tiny_fc_head_legal(self, hw):
        fc = fc_as_pointwise("head", 512, 10)
        nest = LoopNest(fc, hw, heuristic_mapping(fc, hw))
        assert nest.is_valid(), nest.validity_errors()

    @pytest.mark.parametrize("dims", [(1, 1, 2, 2), (2, 4, 8, 8), (8, 2, 16, 8)])
    def test_legal_across_machines(self, dims):
        hw = build_hardware(*dims)
        layer = ConvLayer("c", h=56, w=56, ci=64, co=128, kh=3, kw=3, padding=1)
        nest = LoopNest(layer, hw, heuristic_mapping(layer, hw))
        assert nest.is_valid(), nest.validity_errors()


class TestHeuristicQuality:
    def test_search_never_loses_to_heuristic(self, hw):
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        for kind, layer in representative_layers(224).items():
            searched = mapper.search_layer(layer).best.energy_pj
            ruled = heuristic_map_model([layer], hw)[0].energy_pj
            assert searched <= ruled + 1e-6, kind

    def test_heuristic_is_competitive(self, hw):
        # The rules of thumb should land within 2x of the searched optimum
        # on every representative layer (they encode real structure).
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        for kind, layer in representative_layers(224).items():
            searched = mapper.search_layer(layer).best.energy_pj
            ruled = heuristic_map_model([layer], hw)[0].energy_pj
            assert ruled < 2.0 * searched, kind

    def test_model_level_evaluation(self, hw):
        reports = heuristic_map_model(get_model("alexnet"), hw)
        assert len(reports) == 8
        assert all(r.energy_pj > 0 for r in reports)

    def test_empty_rejected(self, hw):
        with pytest.raises(ValueError):
            heuristic_map_model([], hw)
