"""Tests for mapping-space enumeration."""

from repro.arch.config import build_hardware, case_study_hardware
from repro.core.loopnest import LoopNest
from repro.core.primitives import PartitionDim, RotationKind
from repro.core.space import MappingSpace, SearchProfile
from repro.workloads.layer import ConvLayer


def common_layer():
    return ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


def thin_layer():
    return ConvLayer("thin", h=224, w=224, ci=3, co=2, kh=3, kw=3, padding=1)


class TestEnumeration:
    def test_candidates_nonempty_all_profiles(self):
        hw = case_study_hardware()
        for profile in SearchProfile:
            space = MappingSpace(hw, profile)
            assert space.unique_candidates(common_layer())

    def test_profile_sizes_ordered(self):
        hw = case_study_hardware()
        sizes = {
            profile: len(MappingSpace(hw, profile).unique_candidates(common_layer()))
            for profile in SearchProfile
        }
        assert (
            sizes[SearchProfile.MINIMAL]
            < sizes[SearchProfile.FAST]
            < sizes[SearchProfile.EXHAUSTIVE]
        )

    def test_candidates_are_unique(self):
        space = MappingSpace(case_study_hardware(), SearchProfile.FAST)
        candidates = space.unique_candidates(common_layer())
        assert len(candidates) == len(set(candidates))

    def test_partition_ways_match_hardware(self):
        hw = case_study_hardware()
        space = MappingSpace(hw, SearchProfile.EXHAUSTIVE)
        for mapping in space.unique_candidates(common_layer()):
            assert mapping.package_spatial.ways == hw.n_chiplets
            assert mapping.chiplet_spatial.ways == hw.n_cores

    def test_exhaustive_covers_all_six_spatial_combos(self):
        # Two package x three chiplet partition dimensions (Section IV-A).
        space = MappingSpace(case_study_hardware(), SearchProfile.EXHAUSTIVE)
        combos = {m.spatial_combo for m in space.unique_candidates(common_layer())}
        assert combos == {
            ("C", "C"), ("C", "P"), ("C", "H"),
            ("P", "C"), ("P", "P"), ("P", "H"),
        }

    def test_exhaustive_covers_all_four_temporal_pairs(self):
        space = MappingSpace(case_study_hardware(), SearchProfile.EXHAUSTIVE)
        pairs = {m.temporal_combo for m in space.unique_candidates(common_layer())}
        assert len(pairs) == 4

    def test_core_tiles_respect_o_l1(self):
        hw = case_study_hardware()
        space = MappingSpace(hw, SearchProfile.EXHAUSTIVE)
        for mapping in space.unique_candidates(common_layer()):
            nest = LoopNest(common_layer(), hw, mapping)
            assert nest.o_l1_required_bytes() <= hw.memory.o_l1_bytes

    def test_thin_layer_skips_channel_package_split(self):
        # A 2-output-channel layer cannot C-split across 4 chiplets.
        space = MappingSpace(case_study_hardware(), SearchProfile.EXHAUSTIVE)
        for mapping in space.unique_candidates(thin_layer()):
            assert mapping.package_spatial.dim is not PartitionDim.CHANNEL

    def test_pointwise_fc_layer_enumerable(self):
        fc = ConvLayer("fc", h=1, w=1, ci=4096, co=1000, kh=1, kw=1)
        space = MappingSpace(case_study_hardware(), SearchProfile.EXHAUSTIVE)
        candidates = space.unique_candidates(fc)
        assert candidates
        for mapping in candidates:
            # A 1x1 plane leaves only the channel dimension to split.
            assert mapping.package_spatial.dim is PartitionDim.CHANNEL

    def test_single_chiplet_no_rotation(self):
        hw = build_hardware(1, 8, 16, 16)
        space = MappingSpace(hw, SearchProfile.EXHAUSTIVE)
        for mapping in space.unique_candidates(common_layer()):
            assert mapping.rotation is RotationKind.NONE

    def test_fast_always_rotates_shared_data(self):
        space = MappingSpace(case_study_hardware(), SearchProfile.FAST)
        for mapping in space.unique_candidates(common_layer()):
            if mapping.package_spatial.dim is PartitionDim.CHANNEL:
                assert mapping.rotation is RotationKind.ACTIVATIONS
            else:
                assert mapping.rotation is RotationKind.WEIGHTS

    def test_exhaustive_includes_rotation_off(self):
        space = MappingSpace(case_study_hardware(), SearchProfile.EXHAUSTIVE)
        rotations = {m.rotation for m in space.unique_candidates(common_layer())}
        assert RotationKind.NONE in rotations

    def test_single_core_chiplet(self):
        hw = build_hardware(4, 1, 16, 16)
        space = MappingSpace(hw, SearchProfile.FAST)
        candidates = space.unique_candidates(common_layer())
        assert candidates
        for mapping in candidates:
            assert mapping.chiplet_spatial.ways == 1
