"""Tests for the hierarchical traffic assembly."""

import pytest

from repro.arch.config import case_study_hardware
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.core.traffic import (
    compute_traffic,
    plane_groups_per_chiplet,
    weight_group_size,
    weight_groups_per_chiplet,
)
from repro.workloads.layer import ConvLayer


def layer():
    return ConvLayer("t", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


def tp(order, h, w, co):
    return TemporalPrimitive(order, h, w, co)


def mapping(pkg, chip, rotation=RotationKind.NONE, tile=(56, 56, 64), core=(8, 8)):
    return Mapping(
        package_spatial=pkg,
        package_temporal=tp(LoopOrder.CHANNEL_PRIORITY, *tile),
        chiplet_spatial=chip,
        chiplet_temporal=tp(LoopOrder.CHANNEL_PRIORITY, core[0], core[1], 8),
        rotation=rotation,
    )


def traffic_for(m):
    nest = LoopNest(layer(), case_study_hardware(), m)
    assert nest.is_valid(), nest.validity_errors()
    report, _ = compute_traffic(nest)
    return report


class TestSharingModes:
    def test_weight_group_size_is_plane_ways(self):
        assert weight_group_size(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.plane(PlanarGrid(2, 4)))) == 8
        assert weight_group_size(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8))) == 1
        assert weight_group_size(
            mapping(SpatialPrimitive.channel(4), SpatialPrimitive.hybrid(2, PlanarGrid(2, 2)))
        ) == 4

    def test_weight_groups_is_channel_ways(self):
        assert weight_groups_per_chiplet(
            mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8))
        ) == 8
        assert weight_groups_per_chiplet(
            mapping(SpatialPrimitive.channel(4), SpatialPrimitive.plane(PlanarGrid(2, 4)))
        ) == 1

    def test_plane_groups(self):
        assert plane_groups_per_chiplet(
            mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8))
        ) == 1
        assert plane_groups_per_chiplet(
            mapping(SpatialPrimitive.channel(4), SpatialPrimitive.plane(PlanarGrid(2, 4)))
        ) == 8


class TestRotation:
    def test_activation_rotation_trades_dram_for_ring(self):
        pkg = SpatialPrimitive.channel(4)
        chip = SpatialPrimitive.channel(8)
        plain = traffic_for(mapping(pkg, chip, RotationKind.NONE))
        rotated = traffic_for(mapping(pkg, chip, RotationKind.ACTIVATIONS))
        # DRAM input shrinks by exactly N_P; the ring carries N_P - 1 hops.
        assert plain.dram_input_bits == pytest.approx(4 * rotated.dram_input_bits)
        assert rotated.d2d_bit_hops == pytest.approx(3 * rotated.dram_input_bits)
        assert plain.d2d_bit_hops == 0.0

    def test_weight_rotation_trades_dram_for_ring(self):
        pkg = SpatialPrimitive.plane(PlanarGrid(2, 2))
        chip = SpatialPrimitive.channel(8)
        plain = traffic_for(mapping(pkg, chip, RotationKind.NONE, tile=(28, 28, 256)))
        rotated = traffic_for(mapping(pkg, chip, RotationKind.WEIGHTS, tile=(28, 28, 256)))
        assert plain.dram_weight_bits == pytest.approx(4 * rotated.dram_weight_bits)
        assert rotated.d2d_bit_hops == pytest.approx(3 * rotated.dram_weight_bits)

    def test_rotation_is_net_win_under_table_i(self):
        # One DRAM access + (N_P - 1) ring hops beats N_P DRAM accesses.
        pkg = SpatialPrimitive.channel(4)
        chip = SpatialPrimitive.channel(8)
        hw = case_study_hardware()
        plain = traffic_for(mapping(pkg, chip, RotationKind.NONE))
        rotated = traffic_for(mapping(pkg, chip, RotationKind.ACTIVATIONS))
        tech = hw.tech
        plain_pj = plain.dram_input_bits * tech.dram_energy_pj_per_bit
        rotated_pj = (
            rotated.dram_input_bits * tech.dram_energy_pj_per_bit
            + rotated.d2d_bit_hops * tech.d2d_energy_pj_per_bit
        )
        assert rotated_pj < plain_pj


class TestInvariants:
    def test_output_traffic_exact(self):
        report = traffic_for(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8)))
        expected = layer().output_elements * 8
        assert report.dram_output_bits == expected
        assert report.o_l2_write_bits == expected
        assert report.o_l2_read_bits == expected

    def test_dram_weight_at_least_unique_weights(self):
        report = traffic_for(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8)))
        assert report.dram_weight_bits >= layer().weight_elements * 8

    def test_rf_traffic_formula(self):
        hw = case_study_hardware()
        report = traffic_for(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8)))
        assert report.rf_rmw_bits == pytest.approx(layer().macs / hw.vector_size * 24)
        assert report.rf_drain_bits == layer().output_elements * 24

    def test_a_l1_write_covers_all_cores(self):
        report = traffic_for(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8)))
        # 32 cores each fill their own A-L1; the multicast bus reads L2 once
        # per chiplet (C-type: one plane group).
        assert report.a_l1_write_bits == pytest.approx(report.a_l2_read_bits * 8)

    def test_plane_partition_multiplies_l2_reads(self):
        c_type = traffic_for(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8)))
        p_type = traffic_for(
            mapping(SpatialPrimitive.channel(4), SpatialPrimitive.plane(PlanarGrid(2, 4)))
        )
        # P-type cores read distinct data: one L2 stream per plane tile.
        assert p_type.a_l2_read_bits > c_type.a_l2_read_bits / 2

    def test_all_fields_non_negative(self):
        report = traffic_for(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8)))
        for name in report.__dataclass_fields__:
            assert getattr(report, name) >= 0, name

    def test_total_bits_sums_fields(self):
        report = traffic_for(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8)))
        total = sum(
            getattr(report, name) for name in report.__dataclass_fields__
        )
        assert report.total_bits == pytest.approx(total)


class TestWeightPoolSharing:
    def test_plane_partition_fills_weights_once_per_chiplet(self):
        # P-type chiplet: all cores share the same weights via the merged
        # W-L1 pool -- fill is counted once, not 8 times.
        c_type = traffic_for(mapping(SpatialPrimitive.channel(4), SpatialPrimitive.channel(8)))
        p_type = traffic_for(
            mapping(SpatialPrimitive.channel(4), SpatialPrimitive.plane(PlanarGrid(2, 4)))
        )
        # The same unique weights flow either way; the pool avoids any
        # per-core duplication, so P-type never moves more weight bits.
        assert p_type.dram_weight_bits <= c_type.dram_weight_bits
