"""Tests for planar partition patterns and halo analysis (Figures 7-8)."""

import pytest

from repro.core.partition import (
    PlanarGrid,
    conflict_elements,
    factor_grids,
    halo_redundancy_ratio,
    max_conflict_degree,
    preferred_grid,
    tile_input_elements,
    unique_input_elements,
)
from repro.workloads.layer import ConvLayer


def resnet_conv1(resolution=512):
    return ConvLayer(
        "conv1", h=resolution, w=resolution, ci=3, co=64, kh=7, kw=7, stride=2, padding=3
    )


def vgg_conv(resolution=512):
    return ConvLayer(
        "conv", h=resolution, w=resolution, ci=64, co=64, kh=3, kw=3, stride=1, padding=1
    )


class TestPlanarGrid:
    def test_pattern_classification(self):
        assert PlanarGrid(2, 2).is_square
        assert PlanarGrid(1, 4).is_stripe
        assert not PlanarGrid(2, 4).is_square
        assert not PlanarGrid(1, 1).is_stripe

    def test_aspect_ratio(self):
        assert PlanarGrid(2, 8).aspect_ratio() == 4.0
        assert PlanarGrid(3, 3).aspect_ratio() == 1.0

    def test_tiles_cover_plane_exactly(self):
        for grid in (PlanarGrid(2, 2), PlanarGrid(3, 5), PlanarGrid(7, 1)):
            for ho, wo in ((56, 56), (55, 13), (7, 7)):
                total = sum(tr * tc for tr, tc in grid.tiles(ho, wo))
                assert total == ho * wo

    def test_tile_shape_is_ceil(self):
        assert PlanarGrid(4, 4).tile_shape(55, 55) == (14, 14)

    def test_invalid_grid_raises(self):
        with pytest.raises(ValueError):
            PlanarGrid(0, 2)


class TestFactorGrids:
    def test_all_factorizations(self):
        grids = factor_grids(8)
        assert {(g.rows, g.cols) for g in grids} == {(1, 8), (2, 4), (4, 2), (8, 1)}

    def test_aspect_cap(self):
        grids = factor_grids(16, max_aspect=4.0)
        assert all(g.aspect_ratio() <= 4.0 for g in grids)
        assert PlanarGrid(4, 4) in grids

    def test_invalid_ways_raises(self):
        with pytest.raises(ValueError):
            factor_grids(0)


class TestHaloRedundancy:
    def test_single_tile_no_redundancy(self):
        assert halo_redundancy_ratio(vgg_conv(), PlanarGrid(1, 1)) == 0.0

    def test_no_halo_when_kernel_equals_stride(self):
        layer = ConvLayer("pool", h=64, w=64, ci=8, co=8, kh=2, kw=2, stride=2)
        assert halo_redundancy_ratio(layer, PlanarGrid(4, 4)) == pytest.approx(0.0)

    def test_redundancy_grows_with_partitions(self):
        layer = resnet_conv1()
        ratios = [
            halo_redundancy_ratio(layer, PlanarGrid(n, n)) for n in (2, 4, 8, 16)
        ]
        assert ratios == sorted(ratios)

    def test_square_beats_stripe_at_same_tile_count(self):
        # "the square pattern enjoys less redundant access compared to the
        # rectangle (stripe) one"
        layer = resnet_conv1()
        square = halo_redundancy_ratio(layer, PlanarGrid(4, 4))
        stripe = halo_redundancy_ratio(layer, PlanarGrid(1, 16))
        assert square < stripe

    def test_gap_narrows_with_larger_tiles(self):
        # "the gap between them tends to be smaller when the tile size is
        # getting larger"
        layer = resnet_conv1()
        gap_fine = halo_redundancy_ratio(layer, PlanarGrid(8, 32)) - (
            halo_redundancy_ratio(layer, PlanarGrid(16, 16))
        )
        gap_coarse = halo_redundancy_ratio(layer, PlanarGrid(2, 8)) - (
            halo_redundancy_ratio(layer, PlanarGrid(4, 4))
        )
        assert gap_coarse < gap_fine

    def test_7x7_worse_than_3x3(self):
        # "Compared to the 7x7 convolution, the 3x3 convolution in VGG-16
        # presents lower extra access"
        grid = PlanarGrid(8, 8)
        assert halo_redundancy_ratio(resnet_conv1(), grid) > halo_redundancy_ratio(
            vgg_conv(), grid
        )

    def test_fine_tiles_reach_paper_scale(self):
        # The paper reports up to 650% extra access for ResNet-50 conv1.
        layer = resnet_conv1()
        fine = halo_redundancy_ratio(layer, PlanarGrid(256, 64))  # 1x4 tiles
        assert fine > 4.0

    def test_tile_input_sums_per_consumer(self):
        layer = vgg_conv(64)
        assert tile_input_elements(layer, PlanarGrid(1, 1)) == unique_input_elements(
            layer
        )
        assert tile_input_elements(layer, PlanarGrid(2, 2)) > unique_input_elements(
            layer
        )


class TestConflict:
    def test_square_conflict_degree_4(self):
        # Figure 8(a): the central halo is needed by all four chiplets.
        assert max_conflict_degree(resnet_conv1(), PlanarGrid(2, 2)) == 4

    def test_rectangle_conflict_degree_2(self):
        # Figure 8(b): at most two chiplets share any halo element.
        assert max_conflict_degree(resnet_conv1(), PlanarGrid(1, 4)) == 2

    def test_no_conflict_without_halo(self):
        layer = ConvLayer("pool", h=64, w=64, ci=8, co=8, kh=2, kw=2, stride=2)
        assert max_conflict_degree(layer, PlanarGrid(2, 2)) == 1

    def test_conflict_elements_positive_with_halo(self):
        assert conflict_elements(resnet_conv1(), PlanarGrid(2, 2)) > 0

    def test_conflict_elements_zero_for_single_tile(self):
        assert conflict_elements(resnet_conv1(), PlanarGrid(1, 1)) == 0


class TestPreferredGrid:
    def test_prefers_square_for_redundancy(self):
        grid = preferred_grid(vgg_conv(), 16)
        assert grid.is_square

    def test_conflict_cap_forces_stripe(self):
        # Package level: bound the DRAM conflict degree at 2 (Figure 8).
        grid = preferred_grid(resnet_conv1(), 4, max_conflict=2)
        assert max_conflict_degree(resnet_conv1(), grid) <= 2

    def test_returns_factorization(self):
        grid = preferred_grid(vgg_conv(), 6)
        assert grid.ways == 6
