"""Tests for the C3P evaluation engine (energy / runtime / EDP)."""

import pytest

from repro.arch.config import case_study_hardware
from repro.core.cost import (
    EnergyBreakdown,
    InvalidMappingError,
    evaluate_mapping,
    intrinsic_compute_energy_pj,
    model_cost,
)
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.workloads.layer import ConvLayer


def layer():
    return ConvLayer("t", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


def good_mapping():
    return Mapping(
        package_spatial=SpatialPrimitive.channel(4),
        package_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 56, 56, 64),
        chiplet_spatial=SpatialPrimitive.channel(8),
        chiplet_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 8),
        rotation=RotationKind.ACTIVATIONS,
    )


class TestEnergyBreakdown:
    def test_total_is_sum(self):
        b = EnergyBreakdown(1, 2, 3, 4, 5, 6, 7, 8)
        assert b.total_pj == 36

    def test_addition(self):
        a = EnergyBreakdown(1, 1, 1, 1, 1, 1, 1, 1)
        b = EnergyBreakdown(2, 2, 2, 2, 2, 2, 2, 2)
        assert (a + b).total_pj == 24

    def test_zero_identity(self):
        a = EnergyBreakdown(1, 2, 3, 4, 5, 6, 7, 8)
        assert (a + EnergyBreakdown.zero()).total_pj == a.total_pj

    def test_as_dict_keys(self):
        keys = list(EnergyBreakdown.zero().as_dict())
        assert keys == ["dram", "d2d", "a_l2", "o_l2", "a_l1", "w_l1", "rf", "mac"]


class TestEvaluateMapping:
    def test_report_fields(self):
        hw = case_study_hardware()
        report = evaluate_mapping(layer(), hw, good_mapping())
        assert report.energy_pj > 0
        assert report.cycles > 0
        assert 0 < report.utilization <= 1
        assert report.o_l2_bytes > 0

    def test_energy_total_matches_breakdown(self):
        hw = case_study_hardware()
        report = evaluate_mapping(layer(), hw, good_mapping())
        assert report.energy_pj == pytest.approx(sum(report.energy.as_dict().values()))

    def test_mac_energy_is_published_constant(self):
        hw = case_study_hardware()
        report = evaluate_mapping(layer(), hw, good_mapping())
        assert report.energy.mac_pj == pytest.approx(layer().macs * 0.024)

    def test_oversubscribed_mapping_raises(self):
        hw = case_study_hardware()
        bad = Mapping(
            package_spatial=SpatialPrimitive.channel(8),  # > 4 chiplets
            package_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 56, 56, 64),
            chiplet_spatial=SpatialPrimitive.channel(8),
            chiplet_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 8),
        )
        with pytest.raises(InvalidMappingError):
            evaluate_mapping(layer(), hw, bad)

    def test_partial_occupancy_is_legal(self):
        # Thin layers may feed fewer units than the hardware provides; the
        # idle units cost utilization, not legality.
        hw = case_study_hardware()
        partial = Mapping(
            package_spatial=SpatialPrimitive.channel(2),
            package_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 56, 56, 128),
            chiplet_spatial=SpatialPrimitive.channel(8),
            chiplet_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 8),
        )
        report = evaluate_mapping(layer(), hw, partial)
        assert report.utilization <= 0.5  # half the chiplets idle

    def test_runtime_and_edp(self):
        hw = case_study_hardware()
        report = evaluate_mapping(layer(), hw, good_mapping())
        assert report.runtime_s(hw) == pytest.approx(report.cycles * 2e-9)
        assert report.edp(hw) == pytest.approx(
            report.energy_pj * 1e-12 * report.runtime_s(hw)
        )

    def test_movement_below_total(self):
        hw = case_study_hardware()
        report = evaluate_mapping(layer(), hw, good_mapping())
        assert 0 < report.movement_pj(hw) < report.energy_pj

    def test_intrinsic_is_mapping_invariant(self):
        hw = case_study_hardware()
        a = evaluate_mapping(layer(), hw, good_mapping())
        other = Mapping(
            package_spatial=SpatialPrimitive.plane(PlanarGrid(2, 2)),
            package_temporal=TemporalPrimitive(LoopOrder.PLANE_PRIORITY, 28, 28, 256),
            chiplet_spatial=SpatialPrimitive.plane(PlanarGrid(2, 4)),
            chiplet_temporal=TemporalPrimitive(LoopOrder.PLANE_PRIORITY, 7, 7, 8),
            rotation=RotationKind.WEIGHTS,
        )
        b = evaluate_mapping(layer(), hw, other)
        intrinsic = intrinsic_compute_energy_pj(layer(), hw)
        assert a.energy_pj - a.movement_pj(hw) == pytest.approx(intrinsic)
        assert b.energy_pj - b.movement_pj(hw) == pytest.approx(intrinsic)


class TestModelCost:
    def test_aggregates_layers(self):
        hw = case_study_hardware()
        report = evaluate_mapping(layer(), hw, good_mapping())
        energy, cycles, edp = model_cost([report, report], hw)
        assert energy.total_pj == pytest.approx(2 * report.energy_pj)
        assert cycles == 2 * report.cycles
        assert edp == pytest.approx(energy.total_pj * 1e-12 * cycles * 2e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            model_cost([], case_study_hardware())
