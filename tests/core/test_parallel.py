"""The parallel executor layer: jobs policy, fan-out, and determinism.

The acceptance bar for the parallel search engine is bit-identical results
at every worker count -- ``jobs=N`` must return exactly what the serial
``jobs=1`` path returns, for both the layer search and the DSE sweeps.
"""

import pytest

from repro.arch.config import case_study_hardware
from repro.core.cache import MappingCache
from repro.core.dse import DesignSpace, explore, granularity_study
from repro.core.mapper import Mapper
from repro.core.parallel import (
    JOBS_ENV,
    SweepStats,
    chunked,
    is_picklable,
    resolve_jobs,
    run_tasks,
)
from repro.core.space import SearchProfile
from repro.workloads.models import alexnet

#: A deliberately tiny Table II subspace so sweeps stay test-fast.
SMALL_SPACE = DesignSpace(
    vector_sizes=(4,),
    lanes=(4,),
    cores=(2, 4),
    chiplets=(1, 2),
    o_l1_per_lane_bytes=(96,),
    a_l1_kb=(2, 4),
    w_l1_kb=(8,),
    a_l2_kb=(32,),
)


def small_models():
    return {"alexnet": alexnet(resolution=224)[:4]}


def point_fingerprint(points):
    """Everything observable about a sweep result, for equality checks."""
    return [
        (
            p.label,
            p.valid,
            p.errors,
            p.chiplet_area_mm2,
            sorted(p.energy_pj.items()),
            sorted(p.cycles.items()),
        )
        for p in points
    ]


def _double(x):
    return 2 * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert run_tasks(_double, items, jobs=2) == [2 * i for i in items]

    def test_empty_tasks(self):
        assert run_tasks(_double, [], jobs=4) == []

    def test_is_picklable(self):
        assert is_picklable((1, "a"))
        assert not is_picklable(lambda x: x)

    def test_chunked(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestSweepStats:
    def test_stage_timer_accumulates(self):
        stats = SweepStats()
        with stats.stage("a"):
            pass
        with stats.stage("a"):
            pass
        assert stats.stage_s["a"] >= 0.0
        assert stats.wall_s == sum(stats.stage_s.values())

    def test_points_per_sec_zero_without_time(self):
        assert SweepStats().points_per_sec == 0.0


class TestSearchDeterminism:
    """jobs=1 and jobs=N produce bit-identical rankings and costs."""

    def test_search_model_parallel_matches_serial(self):
        hw = case_study_hardware()
        layers = alexnet(resolution=224)
        serial = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, cache=MappingCache()
        ).search_model(layers, jobs=1)
        parallel = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, cache=MappingCache()
        ).search_model(layers, jobs=2)
        assert [r.layer.name for r in serial] == [r.layer.name for r in parallel]
        assert [r.best.energy_pj for r in serial] == [
            r.best.energy_pj for r in parallel
        ]
        assert [r.mapping for r in serial] == [r.mapping for r in parallel]
        assert [r.candidates_evaluated for r in serial] == [
            r.candidates_evaluated for r in parallel
        ]

    def test_explore_parallel_matches_serial(self):
        models = small_models()
        kwargs = dict(
            required_macs=32,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
        )
        serial = explore(models, jobs=1, **kwargs)
        parallel = explore(models, jobs=2, **kwargs)
        assert point_fingerprint(serial) == point_fingerprint(parallel)
        # The ranking (best point per objective) is therefore identical too.

    def test_explore_cap_identical_across_jobs(self):
        models = small_models()
        kwargs = dict(
            required_macs=32,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            max_valid_points=1,
        )
        serial = explore(models, jobs=1, **kwargs)
        parallel = explore(models, jobs=2, **kwargs)
        assert point_fingerprint(serial) == point_fingerprint(parallel)
        skipped = [p for p in serial if "skipped" in " ".join(p.errors)]
        assert skipped, "the cap must mark later valid points as skipped"

    def test_granularity_parallel_matches_serial(self):
        models = small_models()
        serial = granularity_study(
            models, total_macs=64, space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL, jobs=1,
        )
        parallel = granularity_study(
            models, total_macs=64, space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL, jobs=2,
        )
        assert point_fingerprint(serial) == point_fingerprint(parallel)

    def test_explore_fills_stats(self):
        stats = SweepStats()
        explore(
            small_models(),
            required_macs=32,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            jobs=1,
            stats=stats,
        )
        assert stats.points_total == 2
        assert stats.points_evaluated >= 1
        assert "explore" in stats.stage_s
        assert stats.cache_misses > 0

    def test_unpicklable_objective_falls_back_to_serial(self):
        hw = case_study_hardware()
        layers = alexnet(resolution=224)[:3]
        mapper = Mapper(
            hw=hw,
            profile=SearchProfile.MINIMAL,
            objective=lambda report, hw: report.energy_pj,
            cache=MappingCache(),
        )
        results = mapper.search_model(layers, jobs=2)
        assert len(results) == 3
