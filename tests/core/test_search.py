"""Unit tests for the guided ask/tell search engine (core/search.py)."""

import pytest

from repro.arch.config import build_hardware
from repro.core.checkpoint import sweep_digest
from repro.core.dse import DesignSpace, best_point, explore
from repro.core.parallel import SweepStats
from repro.core.search import (
    ExhaustiveStrategy,
    GuidedStrategy,
    Lattice,
    Study,
    StudyConfigError,
    edp_lower_bound,
    guided_explore,
)
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer

# A lattice small enough that guided-with-enough-trials covers it fully:
# 6 computation configs x 16 legal memory combos = 96 points.
TINY_SPACE = DesignSpace(
    vector_sizes=(2, 4),
    lanes=(2, 4),
    cores=(1, 2),
    chiplets=(1, 2),
    o_l1_per_lane_bytes=(48,),
    a_l1_kb=(1, 2),
    w_l1_kb=(2, 4),
    a_l2_kb=(32, 64),
)
TINY_MACS = 16
TINY_MODELS = {
    "tiny": [
        ConvLayer("c1", h=14, w=14, ci=16, co=32, kh=3, kw=3, padding=1),
        ConvLayer("c2", h=7, w=7, ci=32, co=32, kh=1, kw=1),
    ]
}


def _tiny_guided(trials, seed=0, **kwargs):
    return guided_explore(
        TINY_MODELS,
        TINY_MACS,
        space=TINY_SPACE,
        profile=SearchProfile.MINIMAL,
        trials=trials,
        seed=seed,
        jobs=1,
        **kwargs,
    )


def _fingerprint(points):
    return [
        (
            p.label,
            p.valid,
            tuple(p.errors),
            tuple(sorted(p.energy_pj.items())),
            tuple(sorted(p.cycles.items())),
        )
        for p in points
    ]


class TestLattice:
    def test_size_counts_legal_points_only(self):
        lattice = Lattice(TINY_SPACE, TINY_MACS)
        assert lattice.size() == len(lattice.scan())

    def test_repair_bumps_a2_to_legal(self):
        space = DesignSpace(
            vector_sizes=(2,), lanes=(2,), cores=(2,), chiplets=(2,),
            o_l1_per_lane_bytes=(48,), a_l1_kb=(64,), w_l1_kb=(2,),
            a_l2_kb=(32, 128),
        )
        lattice = Lattice(space, 16)
        assert lattice.repair((0, 0, 0, 0, 0)) == (0, 0, 0, 0, 1)
        assert lattice.repair((0, 0, 0, 0, 1)) == (0, 0, 0, 0, 1)

    def test_repair_returns_none_when_no_legal_a2(self):
        space = DesignSpace(
            vector_sizes=(2,), lanes=(2,), cores=(2,), chiplets=(2,),
            o_l1_per_lane_bytes=(48,), a_l1_kb=(256,), w_l1_kb=(2,),
            a_l2_kb=(32, 128),
        )
        lattice = Lattice(space, 16)
        assert lattice.repair((0, 0, 0, 0, 0)) is None

    def test_unfactorable_mac_budget_raises(self):
        with pytest.raises(ValueError, match="factorization"):
            Lattice(TINY_SPACE, 7)

    def test_neighbours_are_legal_and_exclude_self(self):
        lattice = Lattice(TINY_SPACE, TINY_MACS)
        index = lattice.scan()[3]
        neighbours = lattice.neighbours(index)
        assert neighbours
        assert index not in neighbours
        legal = set(lattice.scan())
        assert set(neighbours) <= legal
        assert len(neighbours) == len(set(neighbours))

    def test_candidate_memory_matches_index(self):
        lattice = Lattice(TINY_SPACE, TINY_MACS)
        cand = lattice.candidate((0, 0, 1, 1, 1))
        assert cand.memory.a_l1_bytes == 2 * 1024
        assert cand.memory.w_l1_bytes == 4 * 1024
        assert cand.memory.a_l2_bytes == 64 * 1024
        lane = cand.comp[2]
        assert cand.memory.o_l1_bytes == 48 * lane


class TestStrategies:
    def test_exhaustive_strategy_covers_lattice_once(self):
        strategy = ExhaustiveStrategy(TINY_SPACE, TINY_MACS)
        seen = []
        while not strategy.finished():
            batch = strategy.ask(7)
            seen.extend(cand.index for cand in batch)
        assert seen == strategy.lattice.scan()

    def test_guided_never_reproposes(self):
        strategy = GuidedStrategy(TINY_SPACE, TINY_MACS, trials=1000, seed=3)
        seen = set()
        for _ in range(40):
            for cand in strategy.ask(8):
                assert cand.index not in seen
                seen.add(cand.index)

    def test_guided_exhausts_small_lattice(self):
        strategy = GuidedStrategy(TINY_SPACE, TINY_MACS, trials=10_000, seed=0)
        total = 0
        while True:
            batch = strategy.ask(16)
            if not batch:
                break
            total += len(batch)
        assert total == strategy.lattice.size()
        assert strategy.finished()

    def test_guided_rejects_empty_budget(self):
        with pytest.raises(ValueError, match="trials"):
            GuidedStrategy(TINY_SPACE, TINY_MACS, trials=0)


class TestLowerBoundAdmissible:
    def test_bound_never_exceeds_actual_edp(self):
        # Evaluate the full tiny sweep and check admissibility pointwise --
        # the property the pruning rule's safety rests on.
        points = explore(
            TINY_MODELS,
            TINY_MACS,
            space=TINY_SPACE,
            profile=SearchProfile.MINIMAL,
            jobs=1,
        )
        checked = 0
        for point in points:
            if not (point.valid and point.energy_pj):
                continue
            bound = edp_lower_bound(point.hw, TINY_MODELS["tiny"])
            assert bound <= point.edp("tiny") * (1 + 1e-12), point.label
            checked += 1
        assert checked > 10


class TestGuidedExplore:
    def test_full_budget_matches_exhaustive_optimum(self):
        # With trials >= lattice size the guided run covers every point, so
        # its best must equal the exhaustive oracle's best exactly.
        exhaustive = explore(
            TINY_MODELS,
            TINY_MACS,
            space=TINY_SPACE,
            profile=SearchProfile.MINIMAL,
            jobs=1,
        )
        oracle = best_point(exhaustive, "tiny")
        guided = _tiny_guided(trials=Lattice(TINY_SPACE, TINY_MACS).size())
        found = best_point(guided, "tiny")
        assert found is not None
        assert found.label == oracle.label
        assert found.edp("tiny") == oracle.edp("tiny")

    def test_seeded_runs_identical(self):
        a = _fingerprint(_tiny_guided(trials=30, seed=11))
        b = _fingerprint(_tiny_guided(trials=30, seed=11))
        assert a == b

    def test_different_seeds_diverge(self):
        a = _fingerprint(_tiny_guided(trials=30, seed=1))
        b = _fingerprint(_tiny_guided(trials=30, seed=2))
        assert a != b

    def test_budget_respected(self):
        stats = SweepStats()
        points = _tiny_guided(trials=9, stats=stats)
        evaluated = sum(1 for p in points if p.valid and p.energy_pj)
        assert evaluated <= 9
        assert stats.points_evaluated == evaluated

    def test_pruned_points_are_labelled(self):
        # An unconstrained run over the tiny lattice prunes at least one
        # oversized-memory candidate once an incumbent exists.
        stats = SweepStats()
        points = _tiny_guided(trials=96, stats=stats)
        pruned = [
            p
            for p in points
            if not p.valid and any(e.startswith("pruned:") for e in p.errors)
        ]
        assert len(pruned) == stats.points_pruned
        for point in pruned:
            assert edp_lower_bound(point.hw, TINY_MODELS["tiny"]) > 0

    def test_pruning_never_discards_the_optimum(self):
        # The winning label of a pruned run must match the full sweep's.
        exhaustive = explore(
            TINY_MODELS,
            TINY_MACS,
            space=TINY_SPACE,
            profile=SearchProfile.MINIMAL,
            jobs=1,
        )
        oracle = best_point(exhaustive, "tiny")
        guided = _tiny_guided(trials=96)
        found = best_point(guided, "tiny")
        assert found.label == oracle.label
        assert found.edp("tiny") == oracle.edp("tiny")


class TestStudyResume:
    def test_resume_skips_completed_trials(self, tmp_path):
        study = tmp_path / "study.sqlite"
        first = _tiny_guided(trials=20, study=study)
        stats = SweepStats()
        second = _tiny_guided(trials=20, study=study, stats=stats)
        assert stats.points_resumed > 0
        # Every evaluated answer came from the study, none re-ran.
        assert stats.points_evaluated == stats.points_resumed
        assert _fingerprint(first) == _fingerprint(second)

    def test_partial_study_resumes_then_continues(self, tmp_path):
        study = tmp_path / "study.sqlite"
        _tiny_guided(trials=10, study=study)
        stats = SweepStats()
        bigger = _tiny_guided(trials=25, study=None, stats=None)
        # A larger budget is a different search: same path must be refused.
        with pytest.raises(StudyConfigError):
            _tiny_guided(trials=25, study=study)
        assert bigger  # the fresh run itself is unaffected

    def test_mismatched_seed_refused(self, tmp_path):
        study = tmp_path / "study.sqlite"
        _tiny_guided(trials=10, seed=0, study=study)
        with pytest.raises(StudyConfigError, match="seed"):
            _tiny_guided(trials=10, seed=1, study=study)

    def test_study_meta_pins_digest(self, tmp_path):
        path = tmp_path / "study.sqlite"
        Study(path, "digest-a", meta={"strategy": "guided"}).close()
        with pytest.raises(StudyConfigError, match="digest"):
            Study(path, "digest-b", meta={"strategy": "guided"})


class TestStudyCorruption:
    """A damaged --study file is quarantined, never a raw DatabaseError."""

    def test_garbage_file_is_quarantined(self, tmp_path):
        from repro import obs

        path = tmp_path / "study.sqlite"
        path.write_bytes(b"this is not a sqlite database\n")
        recorder = obs.Recorder()
        with obs.use(recorder):
            store = Study(path, "digest-a", meta={"strategy": "guided"})
        try:
            assert store.quarantined is not None
            assert store.quarantined.name.startswith("study.sqlite.corrupt-")
            assert store.quarantined.exists()
            # The fresh replacement works normally.
            store.record("k1", {"label": "p1"})
            store.flush()
            assert store.load() == {"k1": {"label": "p1"}}
        finally:
            store.close()
        assert recorder.metrics.counters()["study.corrupt_files"] == 1

    def test_truncated_file_is_quarantined(self, tmp_path):
        path = tmp_path / "study.sqlite"
        first = Study(path, "digest-a", meta={"strategy": "guided"})
        first.record("k1", {"label": "p1"})
        first.flush()
        first.close()
        # Chop the committed database in half: quick_check must fail.
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        store = Study(path, "digest-a", meta={"strategy": "guided"})
        try:
            assert store.quarantined is not None
            assert store.load() == {}  # fresh study, old trials set aside
        finally:
            store.close()

    def test_corrupt_study_fault_kind(self, tmp_path):
        from repro.testing.faults import FaultPlan, FaultSpec, install_plan

        path = tmp_path / "study.sqlite"
        previous = install_plan(FaultPlan([FaultSpec(kind="corrupt-study")]))
        try:
            store = Study(path, "digest-a", meta={"strategy": "guided"})
        finally:
            install_plan(previous)
        try:
            # The injected garbage file was quarantined on open.
            assert store.quarantined is not None
            store.record("k1", {"label": "p1"})
            store.flush()
            assert store.load() == {"k1": {"label": "p1"}}
        finally:
            store.close()

    def test_guided_explore_survives_corrupt_study(self, tmp_path):
        study = tmp_path / "study.sqlite"
        baseline = _tiny_guided(trials=10, study=None)
        study.write_bytes(b"\xff" * 64)
        points = _tiny_guided(trials=10, study=study)
        assert _fingerprint(points) == _fingerprint(baseline)
        assert list(tmp_path.glob("study.sqlite.corrupt-*"))


class TestExploreDispatch:
    def test_guided_requires_trials(self):
        with pytest.raises(ValueError, match="trials"):
            explore(TINY_MODELS, TINY_MACS, space=TINY_SPACE, strategy="guided")

    def test_guided_rejects_checkpointing(self, tmp_path):
        with pytest.raises(ValueError, match="study"):
            explore(
                TINY_MODELS,
                TINY_MACS,
                space=TINY_SPACE,
                strategy="guided",
                trials=5,
                checkpoint_dir=tmp_path,
            )

    def test_guided_rejects_memory_stride(self):
        with pytest.raises(ValueError, match="memory_stride"):
            explore(
                TINY_MODELS,
                TINY_MACS,
                space=TINY_SPACE,
                strategy="guided",
                trials=5,
                memory_stride=8,
            )

    def test_exhaustive_rejects_guided_knobs(self):
        with pytest.raises(ValueError, match="guided"):
            explore(TINY_MODELS, TINY_MACS, space=TINY_SPACE, trials=5)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            explore(TINY_MODELS, TINY_MACS, space=TINY_SPACE, strategy="tpe")


class TestDigestIncludesSearchParams:
    def test_strategy_seed_trials_change_digest(self):
        base = sweep_digest(
            TINY_MODELS, TINY_MACS, TINY_SPACE, None,
            SearchProfile.MINIMAL, build_hardware(1, 1, 2, 8).tech, 1,
        )
        variants = [
            sweep_digest(
                TINY_MODELS, TINY_MACS, TINY_SPACE, None,
                SearchProfile.MINIMAL, build_hardware(1, 1, 2, 8).tech, 1,
                strategy="guided", seed=0, trials=100,
            ),
            sweep_digest(
                TINY_MODELS, TINY_MACS, TINY_SPACE, None,
                SearchProfile.MINIMAL, build_hardware(1, 1, 2, 8).tech, 1,
                strategy="guided", seed=1, trials=100,
            ),
            sweep_digest(
                TINY_MODELS, TINY_MACS, TINY_SPACE, None,
                SearchProfile.MINIMAL, build_hardware(1, 1, 2, 8).tech, 1,
                strategy="guided", seed=0, trials=200,
            ),
        ]
        digests = [base] + variants
        assert len(set(digests)) == len(digests)

    def test_default_digest_is_stable(self):
        tech = build_hardware(1, 1, 2, 8).tech
        a = sweep_digest(
            TINY_MODELS, TINY_MACS, TINY_SPACE, None,
            SearchProfile.MINIMAL, tech, 1,
        )
        b = sweep_digest(
            TINY_MODELS, TINY_MACS, TINY_SPACE, None,
            SearchProfile.MINIMAL, tech, 1,
            strategy="exhaustive", seed=None, trials=None,
        )
        assert a == b
