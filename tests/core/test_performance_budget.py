"""Tests for the pre-design flow's performance budget."""

import pytest

from repro.core.baton import NNBaton
from repro.core.dse import DesignSpace, best_point, granularity_study
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


def tiny_model():
    return {
        "tiny": [
            ConvLayer("c1", h=28, w=28, ci=32, co=64, kh=3, kw=3, stride=1, padding=1),
        ]
    }


SMALL_SPACE = DesignSpace(
    vector_sizes=(4, 8),
    lanes=(4, 8),
    cores=(2, 4),
    chiplets=(2, 4),
    o_l1_per_lane_bytes=(96,),
    a_l1_kb=(1,),
    w_l1_kb=(18,),
    a_l2_kb=(64,),
)


@pytest.fixture(scope="module")
def points():
    return granularity_study(
        tiny_model(), total_macs=256, space=SMALL_SPACE, profile=SearchProfile.MINIMAL
    )


class TestPerformanceBudget:
    def test_budget_excludes_slow_points(self, points):
        runtimes = sorted(
            p.runtime_s("tiny") for p in points if p.valid
        )
        # Budget below the fastest point: nothing qualifies.
        assert (
            best_point(points, "tiny", max_runtime_s=runtimes[0] / 2) is None
        )

    def test_budget_admits_fast_points(self, points):
        runtimes = sorted(p.runtime_s("tiny") for p in points if p.valid)
        budget = runtimes[0] * 1.001
        chosen = best_point(points, "tiny", max_runtime_s=budget)
        assert chosen is not None
        assert chosen.runtime_s("tiny") <= budget

    def test_budget_changes_recommendation(self, points):
        free = best_point(points, "tiny", objective="energy")
        runtimes = sorted(p.runtime_s("tiny") for p in points if p.valid)
        tight = best_point(
            points, "tiny", objective="energy", max_runtime_s=runtimes[0] * 1.001
        )
        # Under a tight budget the pick is the fastest-feasible, which may
        # cost more energy than the unconstrained optimum.
        assert tight.energy_pj["tiny"] >= free.energy_pj["tiny"] - 1e-6

    def test_pre_design_accepts_budget(self):
        baton = NNBaton()
        result = baton.pre_design(
            tiny_model(),
            required_macs=256,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            max_runtime_s=1.0,  # generous: everything qualifies
        )
        assert result.recommended is not None

    def test_pre_design_impossible_budget(self):
        baton = NNBaton()
        result = baton.pre_design(
            tiny_model(),
            required_macs=256,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            max_runtime_s=1e-12,
        )
        assert result.recommended is None
