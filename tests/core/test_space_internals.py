"""Unit tests for mapping-space internals (tile candidates, Cc0 logic)."""

from repro.arch.config import KB, MemoryConfig, build_hardware, case_study_hardware
from repro.core.space import MappingSpace, SearchProfile, _dedupe, _divisors
from repro.workloads.layer import ConvLayer


class TestHelpers:
    def test_divisors(self):
        assert _divisors(12) == [1, 2, 3, 4, 6, 12]
        assert _divisors(1) == [1]

    def test_dedupe_preserves_order(self):
        assert _dedupe([3, 1, 3, 2, 1]) == [3, 1, 2]


class TestCoreTiles:
    def test_tiles_respect_o_l1_budget(self):
        hw = case_study_hardware()  # 1.5 KB O-L1, 8 lanes -> 64 pixels max
        space = MappingSpace(hw, SearchProfile.EXHAUSTIVE)
        layer = ConvLayer("c", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        for tile_h, tile_w in space.core_tiles(layer, 56, 56):
            assert tile_h * tile_w <= 64

    def test_tiles_clamped_to_share(self):
        hw = case_study_hardware()
        space = MappingSpace(hw, SearchProfile.EXHAUSTIVE)
        layer = ConvLayer("c", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        for tile_h, tile_w in space.core_tiles(layer, 4, 3):
            assert tile_h <= 4 and tile_w <= 3

    def test_cc0_tile_present_for_large_kernel(self):
        # A 7x7-stride-2 layer with an 800 B A-L1: the Cc0-fitting tile must
        # be offered so the mapper can dodge the kernel-sweep penalty.
        hw = case_study_hardware()
        space = MappingSpace(hw, SearchProfile.FAST)
        layer = ConvLayer("lk", h=224, w=224, ci=3, co=64, kh=7, kw=7, stride=2, padding=3)
        tiles = space.core_tiles(layer, 112, 112)
        chunk = min(hw.vector_size, layer.ci)
        assert any(
            layer.input_rows_for(h) * layer.input_cols_for(w) * chunk
            <= hw.memory.a_l1_bytes
            for h, w in tiles
        ), tiles

    def test_cc0_none_when_even_1x1_overflows(self):
        tiny = build_hardware(
            4, 8, 8, 8,
            memory=MemoryConfig(
                a_l1_bytes=16, w_l1_bytes=18 * KB, o_l1_bytes=1536, a_l2_bytes=64 * KB
            ),
        )
        space = MappingSpace(tiny, SearchProfile.FAST)
        layer = ConvLayer("lk", h=224, w=224, ci=64, co=64, kh=7, kw=7, stride=2, padding=3)
        assert space._cc0_square_tile(layer, 64) is None

    def test_pointwise_plane_collapses_tiles(self):
        hw = case_study_hardware()
        space = MappingSpace(hw, SearchProfile.EXHAUSTIVE)
        fc = ConvLayer("fc", h=1, w=1, ci=4096, co=1000, kh=1, kw=1)
        tiles = space.core_tiles(fc, 1, 1)
        assert tiles == [(1, 1)]


class TestNonSquareLayers:
    def test_rectangular_plane_enumerates(self):
        hw = case_study_hardware()
        layer = ConvLayer("rect", h=30, w=90, ci=32, co=64, kh=3, kw=3, padding=1)
        space = MappingSpace(hw, SearchProfile.FAST)
        candidates = space.unique_candidates(layer)
        assert candidates
        from repro.core.cost import evaluate_mapping, InvalidMappingError

        evaluated = 0
        for mapping in candidates:
            try:
                report = evaluate_mapping(layer, hw, mapping)
            except InvalidMappingError:
                continue
            evaluated += 1
            assert report.energy_pj > 0
        assert evaluated > 0

    def test_valid_padding_zero_layer(self):
        hw = case_study_hardware()
        layer = ConvLayer("valid", h=32, w=32, ci=32, co=64, kh=5, kw=5, padding=0)
        assert (layer.ho, layer.wo) == (28, 28)
        space = MappingSpace(hw, SearchProfile.FAST)
        from repro.core.mapper import Mapper

        result = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        assert result.best.energy_pj > 0

    def test_tall_stripe_plane(self):
        hw = case_study_hardware()
        layer = ConvLayer("tall", h=128, w=4, ci=16, co=32, kh=3, kw=3, padding=1)
        from repro.core.mapper import Mapper

        result = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        assert result.best.utilization > 0
