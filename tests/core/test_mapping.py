"""Tests for the Mapping dataclass and its structural rules."""

import pytest

from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)


def tp(h=8, w=8, co=8):
    return TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, h, w, co)


class TestMappingRules:
    def test_valid_mapping(self):
        mapping = Mapping(
            package_spatial=SpatialPrimitive.channel(4),
            package_temporal=tp(28, 28, 64),
            chiplet_spatial=SpatialPrimitive.plane(PlanarGrid(2, 4)),
            chiplet_temporal=tp(),
            rotation=RotationKind.ACTIVATIONS,
        )
        assert mapping.spatial_combo == ("C", "P")

    def test_hybrid_rejected_at_package(self):
        with pytest.raises(ValueError):
            Mapping(
                package_spatial=SpatialPrimitive.hybrid(2, PlanarGrid(1, 2)),
                package_temporal=tp(),
                chiplet_spatial=SpatialPrimitive.channel(8),
                chiplet_temporal=tp(),
            )

    def test_activation_rotation_needs_c_package(self):
        with pytest.raises(ValueError):
            Mapping(
                package_spatial=SpatialPrimitive.plane(PlanarGrid(2, 2)),
                package_temporal=tp(),
                chiplet_spatial=SpatialPrimitive.channel(8),
                chiplet_temporal=tp(),
                rotation=RotationKind.ACTIVATIONS,
            )

    def test_weight_rotation_needs_p_package(self):
        with pytest.raises(ValueError):
            Mapping(
                package_spatial=SpatialPrimitive.channel(4),
                package_temporal=tp(),
                chiplet_spatial=SpatialPrimitive.channel(8),
                chiplet_temporal=tp(),
                rotation=RotationKind.WEIGHTS,
            )

    def test_with_rotation_copy(self):
        mapping = Mapping(
            package_spatial=SpatialPrimitive.channel(4),
            package_temporal=tp(),
            chiplet_spatial=SpatialPrimitive.channel(8),
            chiplet_temporal=tp(),
        )
        rotated = mapping.with_rotation(RotationKind.ACTIVATIONS)
        assert rotated.rotation is RotationKind.ACTIVATIONS
        assert mapping.rotation is RotationKind.NONE

    def test_temporal_combo(self):
        mapping = Mapping(
            package_spatial=SpatialPrimitive.channel(4),
            package_temporal=TemporalPrimitive(LoopOrder.PLANE_PRIORITY, 8, 8, 8),
            chiplet_spatial=SpatialPrimitive.channel(8),
            chiplet_temporal=tp(),
        )
        assert mapping.temporal_combo == (
            LoopOrder.PLANE_PRIORITY,
            LoopOrder.CHANNEL_PRIORITY,
        )

    def test_describe_is_complete(self):
        mapping = Mapping(
            package_spatial=SpatialPrimitive.channel(4),
            package_temporal=tp(28, 28, 64),
            chiplet_spatial=SpatialPrimitive.plane(PlanarGrid(2, 4)),
            chiplet_temporal=tp(),
            rotation=RotationKind.ACTIVATIONS,
        )
        text = mapping.describe()
        assert "C4" in text and "P2x4" in text and "rot=activations" in text

    def test_hashable_for_dedup(self):
        a = Mapping(
            package_spatial=SpatialPrimitive.channel(4),
            package_temporal=tp(),
            chiplet_spatial=SpatialPrimitive.channel(8),
            chiplet_temporal=tp(),
        )
        b = Mapping(
            package_spatial=SpatialPrimitive.channel(4),
            package_temporal=tp(),
            chiplet_spatial=SpatialPrimitive.channel(8),
            chiplet_temporal=tp(),
        )
        assert a == b and hash(a) == hash(b)
