"""The structured error taxonomy: stable codes, stable exits, old contracts.

The taxonomy's whole value is stability: the ``code`` strings and exit
codes are an interface scripts and CI key on, and the retrofitted legacy
exceptions must keep every ``isinstance`` contract they had before joining
the hierarchy.
"""

import sqlite3

import pytest

from repro.errors import (
    EXIT_CONFIG,
    EXIT_DATA,
    EXIT_FAILURE,
    EXIT_INTERRUPT,
    EXIT_RESOURCES,
    EXIT_STATE_CORRUPTION,
    EXIT_USAGE,
    ConfigError,
    DataError,
    ReproError,
    ResourceExhaustedError,
    StateCorruptionError,
    UsageError,
    error_code_for,
    exit_code_for,
)


class TestTaxonomy:
    def test_codes_and_exits_are_pinned(self):
        table = {
            UsageError: ("usage", EXIT_USAGE, 2),
            ConfigError: ("config", EXIT_CONFIG, 3),
            DataError: ("data", EXIT_DATA, 4),
            StateCorruptionError: ("state-corruption", EXIT_STATE_CORRUPTION, 5),
            ResourceExhaustedError: ("resource-exhausted", EXIT_RESOURCES, 6),
        }
        for cls, (code, exit_const, exit_value) in table.items():
            assert cls.code == code
            assert cls.exit_code == exit_const == exit_value
            assert issubclass(cls, ReproError)

    def test_exit_code_for_taxonomy(self):
        assert exit_code_for(DataError("x")) == EXIT_DATA
        assert exit_code_for(KeyboardInterrupt()) == EXIT_INTERRUPT
        assert exit_code_for(sqlite3.DatabaseError("x")) == EXIT_STATE_CORRUPTION
        assert exit_code_for(RuntimeError("x")) == EXIT_FAILURE

    def test_error_code_for(self):
        assert error_code_for(ConfigError("x")) == "config"
        assert error_code_for(KeyboardInterrupt()) == "interrupt"
        assert error_code_for(sqlite3.DatabaseError("x")) == "state-corruption"
        assert error_code_for(RuntimeError("x")) == "error"


class TestRetrofits:
    """Each legacy exception keeps its historical type AND joins the taxonomy."""

    def test_config_validation_error(self):
        from repro.arch.validate import ConfigValidationError

        exc = ConfigValidationError("bad")
        assert isinstance(exc, ValueError)  # historical contract
        assert isinstance(exc, ConfigError)
        assert exit_code_for(exc) == EXIT_CONFIG

    def test_study_config_error(self):
        from repro.core.search import StudyConfigError

        exc = StudyConfigError("bad")
        assert isinstance(exc, ValueError)
        assert isinstance(exc, ConfigError)
        assert exit_code_for(exc) == EXIT_CONFIG

    def test_batch_overflow_error(self):
        from repro.core.batch import BatchOverflowError

        exc = BatchOverflowError("big")
        assert isinstance(exc, OverflowError)
        assert isinstance(exc, ResourceExhaustedError)
        assert exit_code_for(exc) == EXIT_RESOURCES

    def test_resource_invariant_error(self):
        from repro.sim.resources import ResourceInvariantError

        exc = ResourceInvariantError("corrupt")
        assert isinstance(exc, RuntimeError)
        assert isinstance(exc, DataError)
        assert exit_code_for(exc) == EXIT_DATA

    def test_transient_task_error(self):
        from repro.core.parallel import TransientTaskError

        exc = TransientTaskError("crash")
        assert isinstance(exc, RuntimeError)
        assert isinstance(exc, ReproError)
        assert exc.code == "transient"

    def test_workload_and_hardware_spec_errors(self):
        from repro.arch.io import HardwareSpecError
        from repro.workloads.io import WorkloadSpecError

        for cls in (WorkloadSpecError, HardwareSpecError):
            exc = cls("bad")
            assert isinstance(exc, ValueError)
            assert isinstance(exc, DataError)
            assert exit_code_for(exc) == EXIT_DATA

    def test_catching_repro_error_is_sufficient(self):
        """One except clause classifies every structured failure."""
        from repro.arch.validate import ConfigValidationError
        from repro.core.batch import BatchOverflowError
        from repro.workloads.io import WorkloadSpecError

        for exc in (
            ConfigValidationError("a"),
            BatchOverflowError("b"),
            WorkloadSpecError("c"),
        ):
            with pytest.raises(ReproError):
                raise exc
