"""The mapping cache: keying, counters, and the on-disk store.

The headline guarantee: a second ``search_model`` over a repeated-shape
model performs **zero fresh evaluations** -- every lookup is answered from
the cache, in memory within a run and from the JSON store across runs.

Robustness guarantees: concurrent saves against one directory never lose
entries (per-digest ``fcntl`` locking), corrupt or version-mismatched files
are quarantined instead of silently shadowing the store, and stale temp
files from crashed writers are swept on the next save.
"""

import json
import multiprocessing
import os

from repro.arch.config import build_hardware, case_study_hardware, simba_like_hardware
from repro.core.cache import (
    CACHE_FORMAT_VERSION,
    MappingCache,
    cache_key,
    hardware_digest,
)
from repro.core.mapper import Mapper, _shape_key, edp_objective
from repro.core.space import SearchProfile
from repro.workloads.models import alexnet, resnet50


def small_layers():
    return alexnet(resolution=224)[:4]


class TestHardwareDigest:
    def test_stable(self):
        assert hardware_digest(case_study_hardware()) == hardware_digest(
            case_study_hardware()
        )

    def test_differs_across_machines(self):
        assert hardware_digest(case_study_hardware()) != hardware_digest(
            build_hardware(2, 4, 8, 8)
        )

    def test_name_only_twins_share_digest(self):
        # simba_like is the case-study machine under another name; both
        # evaluate every mapping identically, so they share cache entries.
        assert hardware_digest(case_study_hardware()) == hardware_digest(
            simba_like_hardware()
        )

    def test_name_does_not_matter(self):
        from dataclasses import replace

        hw = case_study_hardware()
        assert hardware_digest(hw) == hardware_digest(replace(hw, name="other"))

    def test_memory_matters(self):
        hw = case_study_hardware()
        resized = hw.with_memory(
            type(hw.memory)(
                a_l1_bytes=hw.memory.a_l1_bytes * 2,
                w_l1_bytes=hw.memory.w_l1_bytes,
                o_l1_bytes=hw.memory.o_l1_bytes,
                a_l2_bytes=hw.memory.a_l2_bytes,
            )
        )
        assert hardware_digest(hw) != hardware_digest(resized)


class TestCacheKey:
    def test_components_separated(self):
        layer = small_layers()[0]
        key = cache_key(_shape_key(layer), "abc123", "fast", "energy_objective")
        assert "abc123" in key and "fast" in key and "energy_objective" in key

    def test_profile_and_objective_distinguish(self):
        layer = small_layers()[0]
        shape = _shape_key(layer)
        assert cache_key(shape, "d", "fast", "energy_objective") != cache_key(
            shape, "d", "minimal", "energy_objective"
        )
        assert cache_key(shape, "d", "fast", "energy_objective") != cache_key(
            shape, "d", "fast", "edp_objective"
        )


class TestInMemoryCache:
    def test_second_model_search_is_all_hits(self):
        """The satellite acceptance: zero fresh evaluations on re-search."""
        cache = MappingCache()
        hw = case_study_hardware()
        layers = small_layers()
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(layers)
        misses_after_first = cache.misses
        assert misses_after_first > 0

        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(layers)
        assert cache.misses == misses_after_first
        assert cache.hits >= len(layers)

    def test_repeated_shapes_hit_within_one_search(self):
        cache = MappingCache()
        hw = case_study_hardware()
        layers = resnet50(resolution=224)
        unique_shapes = len({_shape_key(l) for l in layers})
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(
            layers, jobs=1
        )
        assert cache.misses == unique_shapes
        assert cache.hits == len(layers) - unique_shapes

    def test_objectives_do_not_collide(self):
        cache = MappingCache()
        hw = case_study_hardware()
        layer = small_layers()[0]
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_layer(layer)
        misses = cache.misses
        Mapper(
            hw=hw,
            profile=SearchProfile.MINIMAL,
            objective=edp_objective,
            cache=cache,
        ).search_layer(layer)
        assert cache.misses == misses + 1

    def test_hit_rate_and_describe(self):
        cache = MappingCache()
        assert cache.hit_rate == 0.0
        cache.put("a|b|c|d", object())
        cache.get("a|b|c|d")
        cache.get("missing|b|c|d")
        assert cache.hits == 1 and cache.misses == 1
        assert "50%" in cache.describe()


class TestDiskCache:
    def test_round_trip_identical_results(self, tmp_path):
        hw = case_study_hardware()
        layers = small_layers()
        first_cache = MappingCache(tmp_path / "store")
        first = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, cache=first_cache
        ).search_model(layers)

        second_cache = MappingCache(tmp_path / "store")
        second = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, cache=second_cache
        ).search_model(layers)

        assert second_cache.misses == 0
        assert second_cache.disk_hits > 0
        assert [r.best.energy_pj for r in first] == [
            r.best.energy_pj for r in second
        ]
        assert [r.mapping for r in first] == [r.mapping for r in second]
        assert [r.candidates_evaluated for r in first] == [
            r.candidates_evaluated for r in second
        ]

    def test_store_is_versioned_json(self, tmp_path):
        hw = case_study_hardware()
        cache = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(
            small_layers()
        )
        files = list(tmp_path.glob("mappings-*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["version"] == CACHE_FORMAT_VERSION
        assert payload["entries"]

    def test_version_mismatch_ignored(self, tmp_path):
        hw = case_study_hardware()
        cache = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(
            small_layers()
        )
        path = next(tmp_path.glob("mappings-*.json"))
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))

        stale = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=stale).search_model(
            small_layers()
        )
        assert stale.disk_hits == 0
        assert stale.misses > 0

    def test_corrupt_store_ignored(self, tmp_path):
        hw = case_study_hardware()
        cache = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(
            small_layers()
        )
        path = next(tmp_path.glob("mappings-*.json"))
        path.write_text("{not json")
        broken = MappingCache(tmp_path)
        results = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, cache=broken
        ).search_model(small_layers())
        assert len(results) == len(small_layers())
        assert broken.disk_hits == 0

    def test_save_merges_other_writers(self, tmp_path):
        hw = case_study_hardware()
        a = MappingCache(tmp_path)
        b = MappingCache(tmp_path)
        layers = small_layers()
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=a).search_layer(layers[0])
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=b).search_layer(layers[1])
        a.save()
        b.save()
        merged = MappingCache(tmp_path)
        m = Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=merged)
        m.search_layer(layers[0])
        m.search_layer(layers[1])
        assert merged.disk_hits == 2

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert MappingCache.from_env().directory == tmp_path
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert MappingCache.from_env().directory is None

    def test_memory_only_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = MappingCache()
        hw = case_study_hardware()
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(
            small_layers()
        )
        cache.save()
        assert not list(tmp_path.iterdir())


class TestLegacyRecords:
    def test_record_missing_stats_is_a_miss_not_a_zero(self, tmp_path):
        """Regression: a pre-stats disk record must not resurface with
        ``evaluated=0``.

        ``Mapper._rebuild`` used to default missing ``evaluated``/``invalid``
        to 0, so after a cache-format change every legacy record silently
        under-reported ``mapper.candidates.evaluated`` forever.  A record
        missing required keys is now a cache miss: the layer is re-searched
        and the store is repaired with real statistics.
        """
        hw = case_study_hardware()
        layer = small_layers()[0]
        cache = MappingCache(tmp_path)
        fresh = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, cache=cache
        ).search_layer(layer)
        cache.save()
        assert fresh.candidates_evaluated > 0

        # Rewrite the store as a hand-written legacy record: the winning
        # mapping survives, the search statistics do not.
        path = next(tmp_path.glob("mappings-*.json"))
        payload = json.loads(path.read_text())
        for record in payload["entries"].values():
            del record["evaluated"]
            del record["invalid"]
        path.write_text(json.dumps(payload))

        legacy = MappingCache(tmp_path)
        result = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, cache=legacy
        ).search_layer(layer)
        assert legacy.misses == 1 and legacy.disk_hits == 0  # re-searched
        assert result.candidates_evaluated == fresh.candidates_evaluated
        assert result.candidates_invalid == fresh.candidates_invalid
        assert result.mapping == fresh.mapping


DIGEST = "0123456789abcdef" * 4


def _fake_key(writer: int, index: int) -> str:
    return f"shape{writer}x{index}|{DIGEST}|minimal|energy_objective"


def _concurrent_writer(directory, writer, count, barrier):
    """One contending process: save one new entry per iteration."""
    barrier.wait()
    for index in range(count):
        cache = MappingCache(directory)
        key = _fake_key(writer, index)
        cache.put(key, object(), record={"mapping": {"i": index}})
        cache.save()


class TestConcurrentSave:
    def test_two_processes_never_lose_entries(self, tmp_path):
        """The lost-update regression: read-merge-write races must be gone.

        Without the per-digest lock, two processes read the same base file,
        each merge their own entry, and the slower ``replace`` silently
        drops the faster writer's entry.  Fifty iterations per process made
        that race near-certain before the fix.
        """
        count = 50
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(
                target=_concurrent_writer,
                args=(tmp_path, writer, count, barrier),
            )
            for writer in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        payload = json.loads(
            (tmp_path / f"mappings-{DIGEST[:16]}.json").read_text()
        )
        expected = {
            _fake_key(writer, index)
            for writer in range(2)
            for index in range(count)
        }
        assert set(payload["entries"]) == expected


class TestQuarantineAndSweep:
    def test_corrupt_file_quarantined(self, tmp_path):
        hw = case_study_hardware()
        cache = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(
            small_layers()
        )
        path = next(tmp_path.glob("mappings-*.json"))
        path.write_text("{not json")
        broken = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=broken).search_model(
            small_layers()
        )
        assert broken.corrupt_files == 1
        quarantined = list(tmp_path.glob("mappings-*.json.corrupt-*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_text() == "{not json"
        # The fresh save re-created the store cleanly alongside the
        # quarantined original.
        assert json.loads(path.read_text())["entries"]
        reread = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=reread).search_model(
            small_layers()
        )
        assert reread.disk_hits > 0 and reread.corrupt_files == 0

    def test_version_mismatch_quarantined(self, tmp_path):
        hw = case_study_hardware()
        cache = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=cache).search_model(
            small_layers()
        )
        path = next(tmp_path.glob("mappings-*.json"))
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        stale = MappingCache(tmp_path)
        Mapper(hw=hw, profile=SearchProfile.MINIMAL, cache=stale).search_model(
            small_layers()
        )
        assert stale.corrupt_files == 1
        assert list(tmp_path.glob("mappings-*.json.corrupt-*"))

    def test_stale_tmp_files_swept_on_save(self, tmp_path):
        dead = tmp_path / "mappings-feedfeedfeedfeed.tmp.999999999"
        dead.write_text("{}")
        alive = tmp_path / f"mappings-feedfeedfeedfeed.tmp.{os.getpid()}"
        alive.write_text("{}")
        cache = MappingCache(tmp_path)
        cache.put("s|" + DIGEST + "|minimal|o", object(), record={"m": 1})
        cache.save()
        assert not dead.exists()  # pid 999999999 cannot be alive
        assert alive.exists()  # our own (in-progress) temp is untouched

    def test_injected_corruption_recovers_next_run(self, tmp_path):
        """corrupt-cache fault -> torn file on disk -> quarantined, not fatal."""
        from repro.testing.faults import (
            FaultPlan,
            install_plan,
            parse_fault_specs,
        )

        hw = case_study_hardware()
        install_plan(FaultPlan(parse_fault_specs("corrupt-cache:@indices=0")))
        try:
            cache = MappingCache(tmp_path)
            Mapper(
                hw=hw, profile=SearchProfile.MINIMAL, cache=cache
            ).search_model(small_layers())
        finally:
            install_plan(None)
        path = next(tmp_path.glob("mappings-*.json"))
        try:
            json.loads(path.read_text())
            corrupted = False
        except ValueError:
            corrupted = True
        assert corrupted
        fresh = MappingCache(tmp_path)
        results = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, cache=fresh
        ).search_model(small_layers())
        assert len(results) == len(small_layers())
        assert fresh.corrupt_files == 1


def _put_digest(directory, digest, index=0, pad=0):
    """Save one entry under ``digest``; pad the record to inflate file size."""
    cache = MappingCache(directory)
    record = {"mapping": {"i": index}, "pad": "x" * pad}
    cache.put(f"s{index}|{digest}|minimal|o", object(), record=record)
    cache.save()


class TestCacheGovernance:
    """REPRO_CACHE_MAX_BYTES: LRU-by-mtime eviction of digest files."""

    def test_unset_budget_never_evicts(self, tmp_path, monkeypatch):
        from repro.core.cache import CACHE_MAX_BYTES_ENV

        monkeypatch.delenv(CACHE_MAX_BYTES_ENV, raising=False)
        for n in range(3):
            _put_digest(tmp_path, f"{n:x}" * 64, index=n, pad=4096)
        assert len(list(tmp_path.glob("mappings-*.json"))) == 3

    def test_oldest_files_evicted_first(self, tmp_path, monkeypatch):
        from repro import obs
        from repro.core.cache import CACHE_MAX_BYTES_ENV

        digests = [f"{n:x}" * 64 for n in range(1, 4)]
        for n, digest in enumerate(digests):
            _put_digest(tmp_path, digest, index=n, pad=4096)
        # Make mtime order unambiguous: file 0 oldest, file 2 newest.
        for age, digest in enumerate(reversed(digests)):
            path = tmp_path / f"mappings-{digest[:16]}.json"
            os.utime(path, (1_000_000 + 100 * age, 1_000_000 + 100 * age))
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "10000")
        recorder = obs.Recorder()
        with obs.use(recorder):
            _put_digest(tmp_path, digests[2], index=9, pad=4096)
        survivors = {p.name for p in tmp_path.glob("mappings-*.json")}
        # The two least-recently-touched files (digests[2] was just written,
        # so digests[1] then digests[0] by our synthetic mtimes) shrink the
        # store under budget; the newest write always survives.
        assert f"mappings-{digests[2][:16]}.json" in survivors
        assert len(survivors) < 3
        assert recorder.metrics.counters()["cache.evictions"] >= 1

    def test_load_refreshes_recency(self, tmp_path):
        digest = "ab" * 32
        _put_digest(tmp_path, digest, pad=128)
        path = tmp_path / f"mappings-{digest[:16]}.json"
        os.utime(path, (1_000_000, 1_000_000))
        before = path.stat().st_mtime
        cache = MappingCache(tmp_path)
        assert cache.contains(f"s0|{digest}|minimal|o")
        assert path.stat().st_mtime > before

    def test_bad_budget_value_is_config_error(self, tmp_path, monkeypatch):
        import pytest

        from repro.core.cache import CACHE_MAX_BYTES_ENV
        from repro.errors import ConfigError

        _put_digest(tmp_path, "cd" * 32)
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "lots")
        cache = MappingCache(tmp_path)
        cache.put("s1|" + "cd" * 32 + "|minimal|o", object(), record={"m": 1})
        with pytest.raises(ConfigError, match=CACHE_MAX_BYTES_ENV):
            cache.save()
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "-5")
        cache.put("s2|" + "cd" * 32 + "|minimal|o", object(), record={"m": 2})
        with pytest.raises(ConfigError, match=">= 0"):
            cache.save()


class TestCacheDegradedMode:
    """A full disk disables the cache sink; the sweep itself continues."""

    def test_enospc_degrades_and_search_completes(self, tmp_path):
        from repro import durable, obs
        from repro.testing.faults import (
            FaultPlan,
            install_plan,
            parse_fault_specs,
        )

        hw = case_study_hardware()
        install_plan(FaultPlan(parse_fault_specs("enospc@sink=cache")))
        durable.reset_degraded()
        recorder = obs.Recorder()
        try:
            with obs.use(recorder):
                cache = MappingCache(tmp_path)
                results = Mapper(
                    hw=hw, profile=SearchProfile.MINIMAL, cache=cache
                ).search_model(small_layers())
        finally:
            install_plan(None)
        assert len(results) == len(small_layers())  # sweep unharmed
        assert not durable.sink_enabled("cache")
        counters = recorder.metrics.counters()
        assert counters["degraded.cache"] == 1
        assert counters["resource.enospc"] >= 1
        assert not list(tmp_path.glob("mappings-*.json"))
        # Later saves are silent no-ops, not repeated failures.
        cache.put("s|" + "ef" * 32 + "|minimal|o", object(), record={"m": 1})
        cache.save()
        durable.reset_degraded()
