"""Tests for the pre-design DSE flow (Table II, Figures 14-15)."""

import pytest

from repro.core.dse import (
    DesignSpace,
    best_point,
    explore,
    granularity_study,
    pareto_front,
)
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


def tiny_model():
    # One small layer keeps DSE tests fast while exercising the full path.
    return {
        "tiny": [
            ConvLayer("c1", h=28, w=28, ci=32, co=64, kh=3, kw=3, stride=1, padding=1),
            ConvLayer("c2", h=14, w=14, ci=64, co=128, kh=1, kw=1),
        ]
    }


#: A reduced space so sweeps stay fast.
SMALL_SPACE = DesignSpace(
    vector_sizes=(4, 8),
    lanes=(4, 8),
    cores=(2, 4),
    chiplets=(2, 4),
    o_l1_per_lane_bytes=(96,),
    a_l1_kb=(1, 4),
    w_l1_kb=(4, 18),
    a_l2_kb=(32, 64),
)


class TestDesignSpace:
    def test_table_ii_published_options(self):
        space = DesignSpace()
        assert space.vector_sizes == (2, 4, 8, 16)
        assert space.lanes == (2, 4, 8, 16)
        assert space.cores == (1, 2, 4, 8, 16)
        assert space.chiplets == (1, 2, 4, 8)

    def test_2048_mac_factorizations(self):
        # The printed Table II options give 32 computation allocations for
        # 2048 MACs, of which exactly 3 are single-chiplet -- matching the
        # paper's "only three options" remark (its "63" headline is not
        # reproducible from any power-of-two option grid; see EXPERIMENTS.md).
        configs = DesignSpace().computation_configs(2048)
        assert len(configs) == 32
        assert sum(1 for c in configs if c[0] == 1) == 3

    def test_all_configs_hit_budget(self):
        for n_p, n_c, lane, vec in DesignSpace().computation_configs(4096):
            assert n_p * n_c * lane * vec == 4096

    def test_memory_configs_prune_inversion(self):
        # The paper's explicit pruning rule: skip A-L2 < A-L1.
        for memory in DesignSpace().memory_configs(lanes=8):
            assert memory.a_l2_bytes >= memory.a_l1_bytes

    def test_o_l1_scales_per_lane(self):
        sizes = {m.o_l1_bytes for m in DesignSpace().memory_configs(lanes=16)}
        assert sizes == {48 * 16, 96 * 16, 144 * 16}

    def test_sweep_size_counts_pairs(self):
        space = SMALL_SPACE
        total = space.sweep_size()
        per_lane = sum(
            1
            for _ in space.memory_configs(lanes=4)
        )
        assert total == len(space.computation_configs()) * per_lane


class TestGranularityStudy:
    def test_points_cover_all_factorizations(self):
        points = granularity_study(
            tiny_model(), total_macs=256, space=SMALL_SPACE, profile=SearchProfile.MINIMAL
        )
        expected = len(SMALL_SPACE.computation_configs(256))
        assert len(points) == expected
        assert expected > 0

    def test_valid_points_evaluated(self):
        points = granularity_study(
            tiny_model(), total_macs=256, space=SMALL_SPACE, profile=SearchProfile.MINIMAL
        )
        for point in points:
            if point.valid:
                assert point.energy_pj["tiny"] > 0
                assert point.cycles["tiny"] > 0

    def test_edp_and_runtime(self):
        points = granularity_study(
            tiny_model(), total_macs=256, space=SMALL_SPACE, profile=SearchProfile.MINIMAL
        )
        point = next(p for p in points if p.valid)
        assert point.edp("tiny") == pytest.approx(
            point.energy_pj["tiny"] * 1e-12 * point.runtime_s("tiny")
        )


class TestBestPoint:
    def _points(self):
        return granularity_study(
            tiny_model(), total_macs=256, space=SMALL_SPACE, profile=SearchProfile.MINIMAL
        )

    def test_best_edp_is_minimum(self):
        points = self._points()
        best = best_point(points, "tiny", objective="edp")
        assert best is not None
        for p in points:
            if p.valid:
                assert best.edp("tiny") <= p.edp("tiny") + 1e-20

    def test_area_constraint_respected(self):
        points = self._points()
        cap = min(p.chiplet_area_mm2 for p in points if p.valid) + 0.01
        best = best_point(points, "tiny", max_chiplet_mm2=cap)
        assert best is not None
        assert best.chiplet_area_mm2 <= cap

    def test_impossible_constraint_returns_none(self):
        assert best_point(self._points(), "tiny", max_chiplet_mm2=1e-6) is None

    def test_unknown_objective_raises(self):
        with pytest.raises(ValueError):
            best_point(self._points(), "tiny", objective="power")


class TestExplore:
    def test_explore_marks_validity(self):
        points = explore(
            tiny_model(),
            required_macs=256,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            memory_stride=4,
        )
        assert points
        assert any(p.valid for p in points)

    def test_area_constraint_marks_points_invalid(self):
        unconstrained = explore(
            tiny_model(),
            required_macs=256,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            memory_stride=4,
        )
        constrained = explore(
            tiny_model(),
            required_macs=256,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            memory_stride=4,
            max_chiplet_mm2=min(p.chiplet_area_mm2 for p in unconstrained) + 0.05,
        )
        assert sum(p.valid for p in constrained) < sum(p.valid for p in unconstrained)

    def test_max_valid_points_caps_evaluation(self):
        points = explore(
            tiny_model(),
            required_macs=256,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            memory_stride=4,
            max_valid_points=1,
        )
        assert sum(1 for p in points if p.valid and p.energy_pj) == 1

    def test_invalid_stride_raises(self):
        with pytest.raises(ValueError):
            explore(tiny_model(), required_macs=256, memory_stride=0)


class TestParetoFront:
    def test_front_members_undominated(self):
        points = explore(
            tiny_model(),
            required_macs=256,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            memory_stride=2,
        )
        front = pareto_front(points, "tiny")
        assert front
        evaluated = [p for p in points if p.valid and p.energy_pj]
        for member in front:
            assert not any(
                other.chiplet_area_mm2 < member.chiplet_area_mm2
                and other.edp("tiny") < member.edp("tiny")
                for other in evaluated
            )

    def test_front_sorted_by_area(self):
        points = explore(
            tiny_model(),
            required_macs=256,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            memory_stride=2,
        )
        front = pareto_front(points, "tiny")
        areas = [p.chiplet_area_mm2 for p in front]
        assert areas == sorted(areas)
