"""The batch cost-model kernel: switch, tie-break, guard, mapper wiring.

The bit-level batch-vs-scalar agreement itself lives in the hypothesis
differential suite (``tests/properties/test_batch_kernel.py``); this module
pins the deterministic contracts around it -- the ``REPRO_BATCH_KERNEL``
switch, the first-in-enumeration tie-break, the int64 exactness guard's
scalar fallback, and the mapper producing identical results on both paths.
"""

import pytest

from repro.arch.config import build_hardware, case_study_hardware
from repro.core import batch
from repro.core.cost import InvalidMappingError, evaluate_mapping
from repro.core.mapper import Mapper, edp_objective
from repro.core.mapping import Mapping
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer

pytestmark = pytest.mark.skipif(
    not batch.numpy_available(), reason="numpy backend unavailable"
)


def small_layer(name="conv"):
    return ConvLayer(name, h=28, w=28, ci=32, co=64, kh=3, kw=3, stride=1, padding=1)


class TestKernelSwitch:
    @pytest.mark.parametrize("raw", ["", "1", "on", "yes", "true"])
    def test_enabled_by_default_and_on_values(self, monkeypatch, raw):
        if raw:
            monkeypatch.setenv(batch.BATCH_KERNEL_ENV, raw)
        else:
            monkeypatch.delenv(batch.BATCH_KERNEL_ENV, raising=False)
        assert batch.batch_kernel_enabled()

    @pytest.mark.parametrize("raw", ["0", "false", "FALSE", "off", "no", " Off "])
    def test_opt_out_values(self, monkeypatch, raw):
        monkeypatch.setenv(batch.BATCH_KERNEL_ENV, raw)
        assert not batch.batch_kernel_enabled()


def tied_pair():
    """Two non-congruent candidates that tie exactly on every objective.

    On a single-chiplet package the rotating transfer has no hops to pay
    (``sharing_hops = 0``) and broadcast reaches ``n_chiplets = 1`` copies,
    so an activation-rotated mapping and its unrotated twin produce
    bit-identical traffic -- yet they are distinct candidates (the
    congruence key includes the rotation).
    """
    layer = ConvLayer("tie", h=8, w=8, ci=8, co=8, kh=1, kw=1, stride=1, padding=0)
    hw = build_hardware(1, 1, 8, 8)
    base = Mapping(
        package_spatial=SpatialPrimitive.channel(1),
        package_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 8),
        chiplet_spatial=SpatialPrimitive.channel(1),
        chiplet_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 8),
    )
    rotated = base.with_rotation(RotationKind.ACTIVATIONS)
    return layer, hw, [rotated, base]


class TestTieBreak:
    def test_batch_matches_scalar_first_minimum(self):
        """Exact ties resolve to the first enumerated candidate on both paths."""
        layer, hw, candidates = tied_pair()
        reports = [evaluate_mapping(layer, hw, m) for m in candidates]
        assert reports[0].energy_pj == reports[1].energy_pj  # genuinely tied
        assert reports[0].cycles == reports[1].cycles

        for ordering in (candidates, list(reversed(candidates))):
            best, best_score, winner = None, float("inf"), None
            for index, mapping in enumerate(ordering):
                report = evaluate_mapping(layer, hw, mapping)
                score = report.energy_pj
                if score < best_score:
                    best_score, best, winner = score, report, index
            assert winner == 0  # strict-< keeps the first of an exact tie

            result = batch.evaluate_batch(layer, hw, ordering)
            assert result.energy_pj[0] == result.energy_pj[1]
            assert result.best_index("energy") == winner
            assert result.best_index("edp") == winner

    def test_search_batch_reports_first_winner(self):
        layer, hw, candidates = tied_pair()
        outcome = batch.search_batch(layer, hw, candidates)
        assert outcome is not None
        assert outcome.best_index == 0
        assert outcome.evaluated == 2 and outcome.invalid == 0


class TestOverflowGuard:
    def test_oversized_layer_aborts_to_scalar(self):
        layer = ConvLayer(
            "huge",
            h=2**22,
            w=2**22,
            ci=2**20,
            co=8,
            kh=1,
            kw=1,
            stride=1,
            padding=0,
        )
        hw = build_hardware(1, 1, 8, 8)
        mapping = Mapping(
            package_spatial=SpatialPrimitive.channel(1),
            package_temporal=TemporalPrimitive(
                LoopOrder.CHANNEL_PRIORITY, 2**22, 2**22, 8
            ),
            chiplet_spatial=SpatialPrimitive.channel(1),
            chiplet_temporal=TemporalPrimitive(
                LoopOrder.CHANNEL_PRIORITY, 2**22, 2**22, 8
            ),
        )
        with pytest.raises(batch.BatchOverflowError):
            batch.evaluate_batch(layer, hw, [mapping])
        assert batch.search_batch(layer, hw, [mapping]) is None


class TestSearchBatchGuards:
    def test_unknown_objective_falls_back(self):
        layer, hw, candidates = tied_pair()
        assert batch.search_batch(layer, hw, candidates, objective="custom") is None

    def test_empty_candidates_fall_back(self):
        layer, hw, _ = tied_pair()
        assert batch.search_batch(layer, hw, []) is None

    def test_scores_reject_unknown_column(self):
        layer, hw, candidates = tied_pair()
        result = batch.evaluate_batch(layer, hw, candidates)
        with pytest.raises(ValueError):
            result.scores("latency")


class TestMapperIntegration:
    @pytest.mark.parametrize("objective", [None, edp_objective])
    def test_both_paths_agree_end_to_end(self, monkeypatch, objective):
        hw = case_study_hardware()
        layer = small_layer()
        kwargs = {} if objective is None else {"objective": objective}

        monkeypatch.setenv(batch.BATCH_KERNEL_ENV, "0")
        scalar = Mapper(hw=hw, profile=SearchProfile.FAST, **kwargs).search_layer(layer)
        monkeypatch.setenv(batch.BATCH_KERNEL_ENV, "1")
        batched = Mapper(hw=hw, profile=SearchProfile.FAST, **kwargs).search_layer(layer)

        assert batched.mapping == scalar.mapping
        assert batched.best.energy_pj == scalar.best.energy_pj
        assert batched.best.cycles == scalar.best.cycles
        assert batched.candidates_evaluated == scalar.candidates_evaluated
        assert batched.candidates_invalid == scalar.candidates_invalid

    def test_custom_objective_never_takes_batch_path(self):
        hw = case_study_hardware()

        def energy_objective(report, hw):  # name-collides on purpose
            return report.energy_pj

        mapper = Mapper(
            hw=hw, profile=SearchProfile.MINIMAL, objective=energy_objective
        )
        assert mapper._batch_objective is None
        result = mapper.search_layer(small_layer())
        assert result.candidates_evaluated > 0

    def test_impossible_layer_still_raises(self, monkeypatch):
        monkeypatch.setenv(batch.BATCH_KERNEL_ENV, "1")
        hw = case_study_hardware()
        # A 1024-wide kernel row cannot fit the 800 B A-L1 at any tiling, so
        # every candidate is invalid on both paths.
        layer = ConvLayer(
            "impossible", h=1, w=1024, ci=8, co=8, kh=1, kw=1024, stride=1, padding=0
        )
        mapper = Mapper(hw=hw, profile=SearchProfile.MINIMAL)
        with pytest.raises(InvalidMappingError):
            mapper.search_layer(layer)


class TestChunkedBatch:
    """REPRO_BATCH_MAX_BYTES bounds batch size without changing winners."""

    def _candidates(self):
        hw = case_study_hardware()
        layer = small_layer()
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        return layer, hw, mapper._space.unique_candidates(layer)

    def test_budget_parses_to_chunk_size(self, monkeypatch):
        monkeypatch.delenv(batch.BATCH_MAX_BYTES_ENV, raising=False)
        assert batch.batch_chunk_candidates() is None
        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, "4096")
        assert batch.batch_chunk_candidates() == 4
        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, "1")  # floors at one
        assert batch.batch_chunk_candidates() == 1

    def test_bad_budget_is_config_error(self, monkeypatch):
        from repro.errors import ConfigError

        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, "plenty")
        with pytest.raises(ConfigError, match=batch.BATCH_MAX_BYTES_ENV):
            batch.batch_chunk_candidates()
        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, "-1")
        with pytest.raises(ConfigError, match=">= 0"):
            batch.batch_chunk_candidates()

    def test_chunked_outcome_is_identical(self, monkeypatch):
        from repro import obs

        layer, hw, candidates = self._candidates()
        assert len(candidates) >= 8
        monkeypatch.delenv(batch.BATCH_MAX_BYTES_ENV, raising=False)
        whole = batch.search_batch(layer, hw, candidates)
        # A budget forcing >= 4 chunks must pick the same winner and counts.
        budget = max(1, len(candidates) // 4) * 1024
        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, str(budget))
        recorder = obs.Recorder()
        with obs.use(recorder):
            chunked = batch.search_batch(layer, hw, candidates)
        assert chunked == whole
        assert recorder.metrics.counters()["mapper.batch.chunks"] >= 4

    def test_single_candidate_chunks(self, monkeypatch):
        layer, hw, candidates = tied_pair()
        monkeypatch.delenv(batch.BATCH_MAX_BYTES_ENV, raising=False)
        whole = batch.search_batch(layer, hw, candidates)
        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, "1")
        assert batch.search_batch(layer, hw, candidates) == whole

    def test_cross_chunk_tie_keeps_first(self, monkeypatch):
        """A chunk boundary between exact ties must not flip the winner."""
        layer, hw, candidates = tied_pair()
        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, "1024")  # 1 per chunk
        outcome = batch.search_batch(layer, hw, candidates)
        assert outcome is not None and outcome.best_index == 0

    def test_overflow_mid_chunk_falls_back(self, monkeypatch):
        layer = ConvLayer(
            "huge", h=2**22, w=2**22, ci=2**20, co=8, kh=1, kw=1
        )
        hw = build_hardware(1, 1, 8, 8)
        mapping = Mapping(
            package_spatial=SpatialPrimitive.channel(1),
            package_temporal=TemporalPrimitive(
                LoopOrder.CHANNEL_PRIORITY, 2**22, 2**22, 8
            ),
            chiplet_spatial=SpatialPrimitive.channel(1),
            chiplet_temporal=TemporalPrimitive(
                LoopOrder.CHANNEL_PRIORITY, 2**22, 2**22, 8
            ),
        )
        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, "1024")
        assert batch.search_batch(layer, hw, [mapping, mapping]) is None

    def test_mapper_end_to_end_parity(self, monkeypatch):
        hw = case_study_hardware()
        layer = small_layer()
        monkeypatch.delenv(batch.BATCH_MAX_BYTES_ENV, raising=False)
        whole = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        monkeypatch.setenv(batch.BATCH_MAX_BYTES_ENV, "8192")
        chunked = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        assert chunked.mapping == whole.mapping
        assert chunked.best.energy_pj == whole.best.energy_pj
        assert chunked.best.cycles == whole.best.cycles
        assert chunked.candidates_evaluated == whole.candidates_evaluated
        assert chunked.candidates_invalid == whole.candidates_invalid
