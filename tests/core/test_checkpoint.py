"""Sweep checkpoints: digest keying, torn-tail tolerance, and resume.

The headline guarantee: an interrupted sweep resumed from its checkpoint
returns exactly the points an uninterrupted run returns, and never trusts a
checkpoint whose sweep parameters (or format version) differ.
"""

import json

import pytest

from repro.arch.technology import DEFAULT_TECHNOLOGY
from repro.core.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_FORMAT_VERSION,
    SweepCheckpoint,
    sweep_digest,
    task_key,
)
from repro.core.dse import DesignSpace, explore
from repro.core.parallel import SweepStats, TaskPolicy
from repro.core.space import SearchProfile
from repro.testing.faults import FaultPlan, install_plan, parse_fault_specs
from repro.workloads.models import alexnet

SMALL_SPACE = DesignSpace(
    vector_sizes=(4,),
    lanes=(4,),
    cores=(2, 4),
    chiplets=(1, 2),
    o_l1_per_lane_bytes=(96,),
    a_l1_kb=(2, 4),
    w_l1_kb=(8,),
    a_l2_kb=(32,),
)


def small_models():
    return {"alexnet": alexnet(resolution=224)[:4]}


def digest_of(models, **overrides):
    kwargs = dict(
        required_macs=32,
        space=SMALL_SPACE,
        max_chiplet_mm2=None,
        profile=SearchProfile.MINIMAL,
        tech=DEFAULT_TECHNOLOGY,
        memory_stride=1,
    )
    kwargs.update(overrides)
    return sweep_digest(models, **kwargs)


def point_fingerprint(points):
    return [
        (
            p.label,
            p.valid,
            p.errors,
            p.chiplet_area_mm2,
            sorted(p.energy_pj.items()),
            sorted(p.cycles.items()),
        )
        for p in points
    ]


class TestSweepDigest:
    def test_stable(self):
        models = small_models()
        assert digest_of(models) == digest_of(small_models())

    def test_parameters_change_the_digest(self):
        models = small_models()
        base = digest_of(models)
        assert digest_of(models, required_macs=64) != base
        assert digest_of(models, memory_stride=2) != base
        assert digest_of(models, profile=SearchProfile.FAST) != base
        assert digest_of(models, max_chiplet_mm2=2.0) != base

    def test_task_key_includes_memory(self):
        space = SMALL_SPACE
        tasks = []
        for config in space.computation_configs(32):
            for memory in space.memory_configs(config[2]):
                tasks.append((*config, memory))
        keys = [task_key(t) for t in tasks]
        assert len(set(keys)) == len(keys)


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path, "d" * 64, flush_every=2)
        ckpt.reset()
        ckpt.record("a", {"x": 1})
        ckpt.record("b", {"x": 2})  # auto-flush at 2
        ckpt.record("c", {"x": 3})
        ckpt.flush()
        loaded = SweepCheckpoint(tmp_path, "d" * 64).load()
        assert loaded == {"a": {"x": 1}, "b": {"x": 2}, "c": {"x": 3}}

    def test_missing_file_is_empty(self, tmp_path):
        assert SweepCheckpoint(tmp_path, "e" * 64).load() == {}

    def test_torn_tail_tolerated(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path, "f" * 64)
        ckpt.reset()
        ckpt.record("a", {"x": 1})
        ckpt.flush()
        with open(ckpt.path, "a") as handle:
            handle.write('{"kind": "point", "key": "b", "rec')  # torn write
        fresh = SweepCheckpoint(tmp_path, "f" * 64)
        assert fresh.load() == {"a": {"x": 1}}
        assert fresh.corrupt_lines == 1

    def test_version_mismatch_set_aside(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path, "a" * 64)
        ckpt.reset()
        ckpt.record("a", {"x": 1})
        ckpt.flush()
        lines = ckpt.path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = CHECKPOINT_FORMAT_VERSION + 1
        ckpt.path.write_text(
            "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        )
        fresh = SweepCheckpoint(tmp_path, "a" * 64)
        assert fresh.load() == {}
        assert not fresh.path.exists()
        assert list(tmp_path.glob("*.corrupt-*"))

    def test_headerless_file_set_aside(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path, "b" * 64)
        tmp_path.mkdir(exist_ok=True)
        ckpt.path.write_text('{"kind": "point", "key": "a", "record": {}}\n')
        assert ckpt.load() == {}
        assert list(tmp_path.glob("*.corrupt-*"))

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SweepCheckpoint(tmp_path, "c" * 64, flush_every=0)

    def test_resolve_dir(self, tmp_path, monkeypatch):
        assert SweepCheckpoint.resolve_dir(tmp_path / "x") == tmp_path / "x"
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "env"))
        assert SweepCheckpoint.resolve_dir(None) == tmp_path / "env"
        monkeypatch.delenv(CHECKPOINT_DIR_ENV)
        assert str(SweepCheckpoint.resolve_dir(None)) == ".repro_checkpoints"


class TestExploreResume:
    def kwargs(self):
        return dict(
            required_macs=32,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
        )

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="resume"):
            explore(small_models(), resume=True, **self.kwargs())

    def test_full_resume_skips_every_point(self, tmp_path):
        models = small_models()
        first = explore(models, checkpoint_dir=tmp_path, **self.kwargs())
        stats = SweepStats()
        second = explore(
            models,
            checkpoint_dir=tmp_path,
            resume=True,
            stats=stats,
            **self.kwargs(),
        )
        assert point_fingerprint(first) == point_fingerprint(second)
        assert stats.points_resumed == len(first)
        # Resumed runs re-report the stored cache counters, so the stats
        # shape matches an uninterrupted run.
        assert stats.cache_misses > 0

    def test_interrupt_flushes_then_resume_is_identical(self, tmp_path):
        models = small_models()
        clean = explore(models, **self.kwargs())
        install_plan(FaultPlan(parse_fault_specs("interrupt:@indices=1")))
        try:
            with pytest.raises(KeyboardInterrupt):
                explore(
                    models,
                    checkpoint_dir=tmp_path,
                    checkpoint_every=1,
                    **self.kwargs(),
                )
        finally:
            install_plan(None)
        stored = SweepCheckpoint(
            SweepCheckpoint.resolve_dir(tmp_path),
            digest_of(models),
        ).load()
        assert len(stored) == 1  # point 0 completed before the interrupt
        stats = SweepStats()
        resumed = explore(
            models,
            checkpoint_dir=tmp_path,
            resume=True,
            stats=stats,
            **self.kwargs(),
        )
        assert point_fingerprint(resumed) == point_fingerprint(clean)
        assert stats.points_resumed == 1

    def test_changed_sweep_never_reuses_the_checkpoint(self, tmp_path):
        models = small_models()
        explore(models, checkpoint_dir=tmp_path, **self.kwargs())
        stats = SweepStats()
        explore(
            models,
            checkpoint_dir=tmp_path,
            resume=True,
            stats=stats,
            max_chiplet_mm2=2.0,
            **self.kwargs(),
        )
        assert stats.points_resumed == 0

    def test_failed_points_are_not_checkpointed(self, tmp_path):
        models = small_models()
        install_plan(
            FaultPlan(parse_fault_specs("exc:@indices=1&attempts=0"))
        )
        try:
            stats = SweepStats()
            points = explore(
                models,
                checkpoint_dir=tmp_path,
                policy=TaskPolicy(on_error="skip"),
                stats=stats,
                **self.kwargs(),
            )
        finally:
            install_plan(None)
        assert stats.points_failed == 1
        assert not points[1].valid
        assert "evaluation failed" in points[1].errors[0]
        assert stats.failures[0].label  # labelled with the task key
        stored = SweepCheckpoint(
            SweepCheckpoint.resolve_dir(tmp_path), digest_of(models)
        ).load()
        assert len(stored) == len(points) - 1
        # The failed point is re-evaluated (and recovers) on resume.
        resumed = explore(
            models, checkpoint_dir=tmp_path, resume=True, **self.kwargs()
        )
        assert all(p.valid for p in resumed)


class TestCheckpointDegradedMode:
    """A failing disk disables the checkpoint sink; the sweep continues."""

    def test_enospc_on_flush_degrades_once(self, tmp_path, caplog):
        import logging

        from repro import durable, obs

        durable.reset_degraded()
        install_plan(FaultPlan(parse_fault_specs("enospc@sink=checkpoint")))
        recorder = obs.Recorder()
        try:
            with obs.use(recorder), caplog.at_level(
                logging.WARNING, "repro.durable"
            ):
                ckpt = SweepCheckpoint(tmp_path, "a" * 64, flush_every=1)
                ckpt.record("k1", {"x": 1})  # auto-flush hits injected ENOSPC
                ckpt.record("k2", {"x": 2})  # degraded: silent no-op
        finally:
            install_plan(None)
        assert not durable.sink_enabled("checkpoint")
        counters = recorder.metrics.counters()
        assert counters["degraded.checkpoint"] == 1
        # Both the header write and the buffered append hit the fault.
        assert counters["resource.enospc"] == 2
        assert len([r for r in caplog.records if "disabled" in r.message]) == 1
        durable.reset_degraded()

    def test_degraded_flush_does_not_grow_buffer(self, tmp_path):
        from repro import durable

        durable.reset_degraded()
        durable.record_sink_failure("checkpoint", OSError(28, "full"))
        try:
            ckpt = SweepCheckpoint(tmp_path, "b" * 64, flush_every=1)
            for n in range(100):
                ckpt.record(f"k{n}", {"x": n})
            assert ckpt._buffer == []  # cleared, not accumulating forever
            assert not ckpt.path.exists()
        finally:
            durable.reset_degraded()

    def test_explore_completes_with_checkpoint_sink_down(self, tmp_path):
        from repro import durable

        kwargs = dict(
            models={"alexnet": alexnet()[:2]},
            required_macs=32,
            space=SMALL_SPACE,
            profile=SearchProfile.MINIMAL,
            jobs=1,
        )
        clean = explore(**kwargs)
        durable.reset_degraded()
        install_plan(FaultPlan(parse_fault_specs("enospc@sink=checkpoint")))
        try:
            faulted = explore(checkpoint_dir=tmp_path, **kwargs)
        finally:
            install_plan(None)
            durable.reset_degraded()
        assert [p.label for p in faulted] == [p.label for p in clean]
        assert [p.energy_pj for p in faulted] == [p.energy_pj for p in clean]
