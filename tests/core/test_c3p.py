"""Tests for the C3P methodology, pinning the paper's worked examples.

Figure 6(c)-(f) walks four examples; the cases here rebuild them with
concrete loop nests and check critical capacities, penalties and reload
factors against the equations.
"""

import pytest

from repro.arch.config import KB, MemoryConfig, build_hardware, case_study_hardware
from repro.core.c3p import (
    analyze_activation_l1,
    analyze_activation_l2,
    analyze_weight_buffer,
)
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import LoopOrder, SpatialPrimitive, TemporalPrimitive
from repro.workloads.layer import ConvLayer


def build_nest(
    layer,
    hw,
    chip_order=LoopOrder.CHANNEL_PRIORITY,
    pkg_order=LoopOrder.CHANNEL_PRIORITY,
    tile=(32, 32, 64),
    core=(8, 8),
    chip_grid=None,
):
    grid = chip_grid or PlanarGrid(1, hw.n_cores)
    mapping = Mapping(
        package_spatial=SpatialPrimitive.channel(hw.n_chiplets)
        if hw.n_chiplets > 1
        else SpatialPrimitive.channel(1),
        package_temporal=TemporalPrimitive(pkg_order, tile[0], tile[1], tile[2]),
        chiplet_spatial=SpatialPrimitive.plane(grid)
        if hw.n_cores > 1
        else SpatialPrimitive.channel(1),
        chiplet_temporal=TemporalPrimitive(chip_order, core[0], core[1], hw.lanes),
    )
    return LoopNest(layer, hw, mapping)


def common_layer():
    return ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


class TestWeightWalkPaperExamples:
    """Example-1 and example-2 of Figure 6(c)-(d)."""

    def _nest(self, chip_order):
        # 2 chiplets x 2 cores keeps the loop counts legible.
        hw = build_hardware(
            2,
            2,
            8,
            8,
            memory=MemoryConfig(
                a_l1_bytes=4 * KB,
                w_l1_bytes=4 * KB,
                o_l1_bytes=1536,
                a_l2_bytes=64 * KB,
            ),
        )
        return build_nest(common_layer(), hw, chip_order=chip_order, tile=(56, 56, 128))

    def test_example1_channel_priority_critical_capacities(self):
        # Nest (inner->outer): C1, W1, H1, C2, W2, H2.  Cc1 = C1 * filters,
        # Cc2 = C2 * C1 * filters (Section IV-B).
        nest = self._nest(LoopOrder.CHANNEL_PRIORITY)
        filters = nest.layer.weights_for(nest.core_co)  # one block's filters
        analysis = analyze_weight_buffer(nest, buffer_bytes=0)
        caps = [cp.capacity_bytes for cp in analysis.critical_points]
        assert caps[0] == pytest.approx(filters)
        assert caps[1] == pytest.approx(nest.c1 * filters)
        assert caps[2] == pytest.approx(nest.c2 * nest.c1 * filters)

    def test_example1_small_buffer_pays_h1_w1_penalty(self):
        # "W-L1 with less than Cc1 size will encounter H1 x W1 - 1 access
        # penalties" -- i.e. the data moves H1 * W1 times in total.
        nest = self._nest(LoopOrder.CHANNEL_PRIORITY)
        filters = nest.layer.weights_for(nest.core_co)
        just_below = nest.c1 * filters - 1
        analysis = analyze_weight_buffer(nest, buffer_bytes=just_below)
        # Large enough for one block, so only the Cc1 region penalizes
        # (W2/H2 are 1 for this full-width tile).
        assert analysis.reload_factor == pytest.approx(nest.h1 * nest.w1)

    def test_example1_buffer_at_cc1_no_penalty(self):
        nest = self._nest(LoopOrder.CHANNEL_PRIORITY)
        filters = nest.layer.weights_for(nest.core_co)
        analysis = analyze_weight_buffer(nest, buffer_bytes=nest.c1 * filters)
        assert analysis.reload_factor == 1.0

    def test_example2_boundary_critical_position_free(self):
        # Plane-priority puts C1 at the level boundary: "the minimal capacity
        # without penalty only depends on Cp1 because Cp2 is at the boundary
        # of the loop nest".
        nest = self._nest(LoopOrder.PLANE_PRIORITY)
        filters = nest.layer.weights_for(nest.core_co)
        # Nest: W1, H1, C1 | C2, W2, H2.  Below Cc0=filters, the W1/H1
        # region reloads; at Cc0 the penalty disappears even though the
        # buffer is far below C1 * filters.
        below = analyze_weight_buffer(nest, buffer_bytes=filters - 1)
        assert below.reload_factor == pytest.approx(nest.h1 * nest.w1)
        at_cc0 = analyze_weight_buffer(nest, buffer_bytes=filters)
        assert at_cc0.reload_factor == 1.0

    def test_a0_counts_each_weight_once(self):
        nest = self._nest(LoopOrder.CHANNEL_PRIORITY)
        analysis = analyze_weight_buffer(nest, buffer_bytes=10**9)
        expected_weights = (
            nest.layer.weights_for(nest.core_co) * nest.c1 * nest.c2
        )
        assert analysis.a0_bits == pytest.approx(expected_weights * 8)

    def test_fill_is_a0_times_factor(self):
        nest = self._nest(LoopOrder.CHANNEL_PRIORITY)
        analysis = analyze_weight_buffer(nest, buffer_bytes=0)
        assert analysis.fill_bits == pytest.approx(
            analysis.a0_bits * analysis.reload_factor
        )

    def test_reload_factor_monotone_in_buffer(self):
        nest = self._nest(LoopOrder.CHANNEL_PRIORITY)
        sizes = [0, 1 * KB, 8 * KB, 64 * KB, 1024 * KB]
        factors = [
            analyze_weight_buffer(nest, buffer_bytes=s).reload_factor for s in sizes
        ]
        assert factors == sorted(factors, reverse=True)
        assert factors[-1] == 1.0


class TestActivationL1Walk:
    """Example-3 / example-4 of Figure 6(e)-(f) and the Cc0 supplement."""

    def test_case_study_a_l1_is_exactly_cc0(self):
        # The paper's 800 B A-L1 is precisely one P-channel chunk of the
        # 8x8-output, 3x3-kernel input window: 10 * 10 * 8 = 800 bytes.
        layer = ConvLayer("v", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        hw = case_study_hardware()
        nest = build_nest(layer, hw, tile=(16, 32, 16), chip_grid=PlanarGrid(2, 4))
        analysis = analyze_activation_l1(nest, buffer_bytes=800)
        cc0 = analysis.critical_points[0]
        assert cc0.capacity_bytes == pytest.approx(800)
        assert cc0.satisfied

    def test_below_cc0_pays_kernel_penalty(self):
        layer = ConvLayer("v", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        nest = build_nest(
            layer, case_study_hardware(), tile=(16, 32, 16), chip_grid=PlanarGrid(2, 4)
        )
        below = analyze_activation_l1(nest, buffer_bytes=799)
        at = analyze_activation_l1(nest, buffer_bytes=800)
        assert below.reload_factor == pytest.approx(at.reload_factor * 9)

    def test_example4_bad_case_needs_cc2(self):
        # Channel-priority with C1 immediately outside the block: a buffer
        # above Cc0 but below the full-CI window gains nothing across C1
        # (the paper's "bad case for A-L1").
        nest = build_nest(common_layer(), case_study_hardware(), tile=(16, 28, 128))
        full_window = (
            nest.layer.input_rows_for(nest.core_ho)
            * nest.layer.input_cols_for(nest.core_wo)
            * nest.layer.ci
        )
        mid = analyze_activation_l1(nest, buffer_bytes=full_window - 1)
        big = analyze_activation_l1(nest, buffer_bytes=full_window)
        assert mid.reload_factor > big.reload_factor
        assert big.reload_factor * nest.c1 == pytest.approx(mid.reload_factor)

    def test_c_loop_reuse_divides_fill(self):
        nest = build_nest(common_layer(), case_study_hardware(), tile=(16, 28, 128))
        small = analyze_activation_l1(nest, buffer_bytes=800)
        huge = analyze_activation_l1(nest, buffer_bytes=10**9)
        assert small.fill_bits > huge.fill_bits

    def test_a0_counts_halo_per_tile(self):
        nest = build_nest(common_layer(), case_study_hardware(), tile=(16, 28, 128))
        window = (
            nest.layer.input_rows_for(nest.core_ho)
            * nest.layer.input_cols_for(nest.core_wo)
            * nest.layer.ci
        )
        planar = nest.w1 * nest.h1 * nest.w2 * nest.h2
        assert analyze_activation_l1(nest, 10**9).a0_bits == pytest.approx(
            window * planar * 8
        )


class TestActivationL2Walk:
    def test_union_window_counted_once(self):
        # A-L2's intrinsic fill is the union window of the chiplet workload,
        # not the sum of per-core windows.
        nest = build_nest(common_layer(), case_study_hardware(), tile=(28, 28, 64))
        analysis = analyze_activation_l2(nest, buffer_bytes=10**9)
        union = (
            nest.layer.input_rows_for(nest.tile_ho)
            * nest.layer.input_cols_for(nest.tile_wo)
            * nest.layer.ci
        )
        assert analysis.a0_bits == pytest.approx(union * nest.w2 * nest.h2 * 8)

    def test_c2_reuse_requires_window_capacity(self):
        nest = build_nest(common_layer(), case_study_hardware(), tile=(28, 28, 16))
        assert nest.c2 > 1
        window = (
            nest.layer.input_rows_for(nest.tile_ho)
            * nest.layer.input_cols_for(nest.tile_wo)
            * nest.layer.ci
        )
        small = analyze_activation_l2(nest, buffer_bytes=window - 1)
        big = analyze_activation_l2(nest, buffer_bytes=window)
        assert small.reload_factor == pytest.approx(big.reload_factor * nest.c2)

    def test_level1_loops_ignored(self):
        # A-L2 analysis operates at chiplet-workload granularity only.
        nest = build_nest(common_layer(), case_study_hardware(), tile=(28, 28, 64))
        analysis = analyze_activation_l2(nest, buffer_bytes=0)
        labels = [cp.label for cp in analysis.critical_points]
        assert all(not label.startswith(("C1", "W1", "H1")) for label in labels)


class TestInputValidation:
    def test_negative_buffer_raises(self):
        nest = build_nest(common_layer(), case_study_hardware())
        with pytest.raises(ValueError):
            analyze_weight_buffer(nest, -1)
        with pytest.raises(ValueError):
            analyze_activation_l1(nest, -1)
        with pytest.raises(ValueError):
            analyze_activation_l2(nest, -1)

    def test_min_penalty_free_capacity(self):
        nest = build_nest(common_layer(), case_study_hardware())
        analysis = analyze_weight_buffer(nest, buffer_bytes=0)
        threshold = analysis.min_penalty_free_capacity()
        assert analyze_weight_buffer(nest, threshold).reload_factor == 1.0
