"""Tests for loop-nest construction and validity."""

import pytest

from repro.arch.config import case_study_hardware
from repro.core.loopnest import Loop, LoopNest
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import (
    LoopOrder,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.workloads.layer import ConvLayer


def common_layer():
    return ConvLayer("common", h=56, w=56, ci=64, co=64, kh=3, kw=3, stride=1, padding=1)


def make_mapping(
    pkg=None,
    chip=None,
    pkg_order=LoopOrder.CHANNEL_PRIORITY,
    chip_order=LoopOrder.CHANNEL_PRIORITY,
    tile=(32, 32, 64),
    core=(8, 8, 8),
):
    return Mapping(
        package_spatial=pkg or SpatialPrimitive.channel(4),
        package_temporal=TemporalPrimitive(pkg_order, *tile),
        chiplet_spatial=chip or SpatialPrimitive.plane(PlanarGrid(2, 4)),
        chiplet_temporal=TemporalPrimitive(chip_order, *core),
    )


class TestLoop:
    def test_fields(self):
        loop = Loop("C", 1, 4)
        assert loop.is_channel and loop.describe() == "C1:4"

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Loop("X", 1, 4)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            Loop("C", 3, 4)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            Loop("C", 1, 0)


class TestDerivedExtents:
    def test_channel_package_split(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        assert nest.macro_co == 16          # 64 channels / 4 chiplets
        assert nest.macro_ho == 56          # plane untouched by C-split

    def test_plane_chiplet_split(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        assert nest.share_ho == 16          # 32-row tile / 2 core rows
        assert nest.share_wo == 8           # 32-col tile / 4 core cols

    def test_core_co_capped_at_lanes(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        assert nest.core_co == 8

    def test_tiles_clamped_to_macro(self):
        mapping = make_mapping(tile=(999, 999, 999))
        nest = LoopNest(common_layer(), case_study_hardware(), mapping)
        assert nest.tile_ho == 56 and nest.tile_co == 16

    def test_loop_counts_cover_extents(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        assert nest.h1 * nest.core_ho >= nest.share_ho
        assert nest.c1 * nest.core_co >= nest.share_co
        assert nest.h2 * nest.tile_ho >= nest.macro_ho
        assert nest.c2 * nest.tile_co >= nest.macro_co


class TestLoopOrdering:
    def test_channel_priority_puts_c_innermost(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        kinds = [loop.kind for loop in nest.loops()]
        assert kinds == ["C", "W", "H", "C", "W", "H"]

    def test_plane_priority_puts_c_outermost(self):
        mapping = make_mapping(
            pkg_order=LoopOrder.PLANE_PRIORITY, chip_order=LoopOrder.PLANE_PRIORITY
        )
        nest = LoopNest(common_layer(), case_study_hardware(), mapping)
        kinds = [loop.kind for loop in nest.loops()]
        assert kinds == ["W", "H", "C", "W", "H", "C"]

    def test_levels_are_inner_then_outer(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        levels = [loop.level for loop in nest.loops()]
        assert levels == [1, 1, 1, 2, 2, 2]


class TestRuntimeModel:
    def test_block_cycles(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        # 8x8 pixels * 3x3 kernel * ceil(64/8) chunks.
        assert nest.block_cycles() == 8 * 8 * 9 * 8

    def test_total_cycles_at_least_ideal(self):
        layer = common_layer()
        hw = case_study_hardware()
        nest = LoopNest(layer, hw, make_mapping())
        assert nest.total_cycles() >= layer.macs / hw.total_macs

    def test_utilization_in_unit_interval(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        assert 0.0 < nest.utilization() <= 1.0

    def test_perfectly_divisible_mapping_full_utilization(self):
        layer = ConvLayer("even", h=32, w=32, ci=64, co=256, kh=1, kw=1)
        mapping = make_mapping(
            pkg=SpatialPrimitive.channel(4),
            chip=SpatialPrimitive.channel(8),
            tile=(32, 32, 64),
            core=(4, 8, 8),
        )
        nest = LoopNest(layer, case_study_hardware(), mapping)
        assert nest.utilization() == pytest.approx(1.0)


class TestValidity:
    def test_case_study_mapping_valid(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        assert nest.is_valid(), nest.validity_errors()

    def test_o_l1_overflow_rejected(self):
        mapping = make_mapping(core=(32, 32, 8))  # 1024 pixels of psums
        nest = LoopNest(common_layer(), case_study_hardware(), mapping)
        assert any("O-L1" in e for e in nest.validity_errors())

    def test_oversubscribed_package_rejected(self):
        mapping = make_mapping(pkg=SpatialPrimitive.channel(8))
        nest = LoopNest(common_layer(), case_study_hardware(), mapping)
        assert any("package partition" in e for e in nest.validity_errors())

    def test_oversubscribed_chiplet_rejected(self):
        mapping = make_mapping(chip=SpatialPrimitive.channel(16))
        nest = LoopNest(common_layer(), case_study_hardware(), mapping)
        assert any("chiplet partition" in e for e in nest.validity_errors())

    def test_partial_occupancy_legal_with_active_counts(self):
        mapping = make_mapping(pkg=SpatialPrimitive.channel(2))
        nest = LoopNest(common_layer(), case_study_hardware(), mapping)
        assert nest.is_valid(), nest.validity_errors()
        assert nest.active_chiplets == 2
        assert nest.active_cores == 8

    def test_channel_split_beyond_channels_rejected(self):
        thin = ConvLayer("thin", h=56, w=56, ci=8, co=2, kh=3, kw=3, padding=1)
        mapping = make_mapping()  # C4 package on a 2-channel layer
        nest = LoopNest(thin, case_study_hardware(), mapping)
        assert any("channels" in e for e in nest.validity_errors())

    def test_grid_beyond_plane_rejected(self):
        tiny = ConvLayer("tiny", h=3, w=3, ci=64, co=64, kh=3, kw=3, padding=1)
        mapping = make_mapping(
            pkg=SpatialPrimitive.plane(PlanarGrid(4, 1)), tile=(1, 3, 64)
        )
        nest = LoopNest(tiny, case_study_hardware(), mapping)
        assert any("plane" in e for e in nest.validity_errors())

    def test_o_l1_requirement_formula(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        assert nest.o_l1_required_bytes() == 8 * 8 * 8 * 3  # 24-bit psums

    def test_describe_mentions_block_and_loops(self):
        nest = LoopNest(common_layer(), case_study_hardware(), make_mapping())
        text = nest.describe()
        assert "block[8x8x8]" in text and "C1:" in text
