"""Crash-safe write helpers, fault injection at sink boundaries, degradation.

``atomic_write``/``durable_append`` are the only way bytes reach a
persistent sink, so these tests pin their rename/append semantics, the
deterministic I/O fault hook, and the degrade-once contract that keeps a
full disk from killing (or spamming) a sweep.
"""

import errno
import logging

import pytest

from repro import durable, obs
from repro.testing.faults import FaultPlan, FaultSpec, install_plan


@pytest.fixture(autouse=True)
def _clean_state():
    previous = install_plan(None)
    durable.reset_degraded()
    yield
    install_plan(previous)
    durable.reset_degraded()


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.json"
        durable.atomic_write(target, "one")
        assert target.read_text() == "one"
        durable.atomic_write(target, "two")
        assert target.read_text() == "two"
        # No temp debris left behind.
        assert list(tmp_path.iterdir()) == [target]

    def test_failed_write_leaves_old_content(self, tmp_path):
        target = tmp_path / "out.json"
        install_plan(FaultPlan([FaultSpec(kind="enospc", sink="t", indices=(1,))]))
        durable.atomic_write(target, "old", sink="t")  # write 0: clean
        with pytest.raises(OSError) as exc:
            durable.atomic_write(target, "new", sink="t")
        assert exc.value.errno == errno.ENOSPC
        assert target.read_text() == "old"
        assert list(tmp_path.iterdir()) == [target]

    def test_fsync_opt_out_keeps_atomicity(self, tmp_path, monkeypatch):
        monkeypatch.setenv(durable.DURABLE_FSYNC_ENV, "0")
        assert not durable.fsync_enabled()
        target = tmp_path / "out.json"
        durable.atomic_write(target, "content")
        assert target.read_text() == "content"


class TestDurableAppend:
    def test_appends(self, tmp_path):
        target = tmp_path / "log.jsonl"
        durable.durable_append(target, "a\n")
        durable.durable_append(target, "b\n")
        assert target.read_text() == "a\nb\n"

    def test_injected_eio(self, tmp_path):
        install_plan(FaultPlan([FaultSpec(kind="eio")]))
        with pytest.raises(OSError) as exc:
            durable.durable_append(tmp_path / "log", "x\n", sink="s")
        assert exc.value.errno == errno.EIO
        assert not (tmp_path / "log").exists()


class TestFaultDeterminism:
    def test_per_sink_indices_are_independent(self, tmp_path):
        """``indices=0`` hits the first write of EACH sink, not globally."""
        install_plan(FaultPlan([FaultSpec(kind="enospc", indices=(0,))]))
        with pytest.raises(OSError):
            durable.atomic_write(tmp_path / "a", "x", sink="alpha")
        # alpha's write 1 succeeds; beta's write 0 fails.
        durable.atomic_write(tmp_path / "a", "x", sink="alpha")
        with pytest.raises(OSError):
            durable.atomic_write(tmp_path / "b", "x", sink="beta")

    def test_sink_filter(self, tmp_path):
        install_plan(FaultPlan([FaultSpec(kind="enospc", sink="cache")]))
        durable.atomic_write(tmp_path / "ok", "x", sink="checkpoint")
        with pytest.raises(OSError):
            durable.atomic_write(tmp_path / "no", "x", sink="cache")

    def test_rate_draw_is_deterministic(self, tmp_path):
        spec = FaultSpec(kind="enospc", rate=0.5, seed=3)
        fires = [spec.fires(i) for i in range(64)]
        assert fires == [spec.fires(i) for i in range(64)]
        assert 10 <= sum(fires) <= 54  # ~50% of 64, loosely

    def test_slow_disk_does_not_fail_the_write(self, tmp_path):
        install_plan(
            FaultPlan([FaultSpec(kind="slow-disk", sleep_s=0.01, indices=(0,))])
        )
        target = durable.atomic_write(tmp_path / "out", "x", sink="s")
        assert target.read_text() == "x"


class TestDegradedMode:
    def test_first_failure_disables_sink_with_one_warning(self, caplog):
        recorder = obs.Recorder()
        exc = OSError(errno.ENOSPC, "disk full")
        with obs.use(recorder), caplog.at_level(logging.WARNING, "repro.durable"):
            assert durable.sink_enabled("cache")
            durable.record_sink_failure("cache", exc)
            durable.record_sink_failure("cache", exc)
            durable.record_sink_failure("cache", exc)
        assert not durable.sink_enabled("cache")
        assert durable.sink_enabled("checkpoint")
        assert "cache" in durable.degraded_sinks()
        counters = recorder.metrics.counters()
        assert counters["degraded.cache"] == 1  # degrade counted once
        assert counters["resource.enospc"] == 3  # every failure counted
        warnings = [r for r in caplog.records if "disabled" in r.message]
        assert len(warnings) == 1

    def test_is_resource_error(self):
        assert durable.is_resource_error(OSError(errno.ENOSPC, "full"))
        assert durable.is_resource_error(OSError(errno.EIO, "bad"))
        assert durable.is_resource_error(OSError(errno.EDQUOT, "quota"))
        assert not durable.is_resource_error(OSError(errno.ENOENT, "missing"))
        assert not durable.is_resource_error(ValueError("nope"))

    def test_non_osexc_counts_as_unknown(self):
        import sqlite3

        recorder = obs.Recorder()
        with obs.use(recorder):
            durable.record_sink_failure("study", sqlite3.OperationalError("full"))
        counters = recorder.metrics.counters()
        assert counters["resource.unknown"] == 1
        assert counters["degraded.study"] == 1

    def test_reset_degraded(self):
        durable.record_sink_failure("cache", OSError(errno.EIO, "x"))
        assert not durable.sink_enabled("cache")
        durable.reset_degraded()
        assert durable.sink_enabled("cache")
        assert durable.degraded_sinks() == {}
