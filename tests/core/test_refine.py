"""Tests for the DES-refined DSE re-ranking."""

import pytest

from repro.core.dse import DesignSpace, granularity_study, refine_with_simulator
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


def tiny_model():
    return {
        "tiny": [
            ConvLayer("c1", h=28, w=28, ci=32, co=64, kh=3, kw=3, stride=1, padding=1),
        ]
    }


SMALL_SPACE = DesignSpace(
    vector_sizes=(4, 8),
    lanes=(4, 8),
    cores=(2, 4),
    chiplets=(2, 4),
    o_l1_per_lane_bytes=(96,),
    a_l1_kb=(1,),
    w_l1_kb=(18,),
    a_l2_kb=(64,),
)


@pytest.fixture(scope="module")
def points():
    return granularity_study(
        tiny_model(), total_macs=256, space=SMALL_SPACE, profile=SearchProfile.MINIMAL
    )


class TestRefineWithSimulator:
    def test_returns_top_k_sorted_by_simulated_edp(self, points):
        refined = refine_with_simulator(
            points, tiny_model(), "tiny", top_k=3, profile=SearchProfile.MINIMAL
        )
        assert len(refined) == 3
        edps = [p.edp("tiny") for p in refined]
        assert edps == sorted(edps)

    def test_simulated_cycles_at_least_analytical(self, points):
        refined = refine_with_simulator(
            points, tiny_model(), "tiny", top_k=3, profile=SearchProfile.MINIMAL
        )
        analytical = {p.label: p.cycles["tiny"] for p in points if p.valid}
        for point in refined:
            assert point.cycles["tiny"] >= analytical[point.label]

    def test_energy_untouched(self, points):
        refined = refine_with_simulator(
            points, tiny_model(), "tiny", top_k=2, profile=SearchProfile.MINIMAL
        )
        original = {p.label: p.energy_pj["tiny"] for p in points if p.valid}
        for point in refined:
            assert point.energy_pj["tiny"] == original[point.label]

    def test_top_k_larger_than_pool_ok(self, points):
        valid = sum(1 for p in points if p.valid)
        refined = refine_with_simulator(
            points, tiny_model(), "tiny", top_k=valid + 10,
            profile=SearchProfile.MINIMAL,
        )
        assert len(refined) == valid

    def test_invalid_top_k_rejected(self, points):
        with pytest.raises(ValueError):
            refine_with_simulator(points, tiny_model(), "tiny", top_k=0)
