"""Every recovery path of the resilient executor, driven by injected faults.

Each test proves one leg of the :class:`repro.core.parallel.TaskPolicy`
contract: exception isolation under ``on_error="skip"``, abort-by-default,
transient-fault retry with backoff, per-task timeout kills, broken-pool
rebuild, and the final degrade to the serial in-process path.  Faults come
from :mod:`repro.testing.faults`, so every failure fires at a reproducible
task index.
"""

import pytest

from repro.core.parallel import (
    SweepStats,
    TaskFailure,
    TaskPolicy,
    run_tasks,
)
from repro.testing.faults import (
    FAULTS_ENV,
    FaultPlan,
    InjectedCrashError,
    InjectedTaskError,
    install_plan,
    parse_fault_specs,
)


def _triple(x):
    return x * 3


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    previous = install_plan(None)
    yield
    install_plan(previous)


def plan(text: str) -> FaultPlan:
    return FaultPlan(parse_fault_specs(text))


def failure_summary(results):
    return [
        (f.index, f.error_type, f.kind, f.attempts)
        for f in results
        if isinstance(f, TaskFailure)
    ]


class TestPolicyValidation:
    def test_rejects_bad_on_error(self):
        with pytest.raises(ValueError):
            TaskPolicy(on_error="retry")

    def test_rejects_bad_attempts_and_timeout(self):
        with pytest.raises(ValueError):
            TaskPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            TaskPolicy(timeout_s=0)

    def test_backoff_is_exponential(self):
        policy = TaskPolicy(backoff_s=0.1)
        assert policy.retry_delay_s(0) == 0.0
        assert policy.retry_delay_s(1) == pytest.approx(0.1)
        assert policy.retry_delay_s(3) == pytest.approx(0.4)


class TestSerialRecovery:
    def test_abort_reraises_the_original_exception(self):
        install_plan(plan("exc:@indices=2"))
        with pytest.raises(InjectedTaskError):
            run_tasks(_triple, [1, 2, 3, 4], jobs=1)

    def test_skip_isolates_the_failure(self):
        install_plan(plan("exc:@indices=2"))
        stats = SweepStats()
        results = run_tasks(
            _triple,
            [1, 2, 3, 4],
            jobs=1,
            policy=TaskPolicy(on_error="skip"),
            stats=stats,
        )
        assert results[:2] == [3, 6] and results[3] == 12
        assert failure_summary(results) == [
            (2, "InjectedTaskError", "exception", 1)
        ]
        assert stats.points_failed == 1
        assert stats.failures[0].traceback

    def test_transient_fault_retries_then_succeeds(self):
        install_plan(plan("crash:@indices=1"))  # attempts=1: first try only
        stats = SweepStats()
        results = run_tasks(
            _triple,
            [5, 6, 7],
            jobs=1,
            policy=TaskPolicy(backoff_s=0.001),
            stats=stats,
        )
        assert results == [15, 18, 21]
        assert stats.retries == 1
        assert stats.points_failed == 0

    def test_deterministic_exception_is_never_retried(self):
        install_plan(plan("exc:@indices=1&attempts=0"))
        stats = SweepStats()
        results = run_tasks(
            _triple,
            [5, 6],
            jobs=1,
            policy=TaskPolicy(on_error="skip", backoff_s=0.001),
            stats=stats,
        )
        assert failure_summary(results) == [
            (1, "InjectedTaskError", "exception", 1)
        ]
        assert stats.retries == 0

    def test_permanent_crash_exhausts_attempts(self):
        install_plan(plan("crash:@indices=1&attempts=0"))
        stats = SweepStats()
        results = run_tasks(
            _triple,
            [5, 6],
            jobs=1,
            policy=TaskPolicy(
                on_error="skip", max_attempts=2, backoff_s=0.001
            ),
            stats=stats,
        )
        assert failure_summary(results) == [
            (1, "InjectedCrashError", "crash", 2)
        ]
        assert stats.retries == 1

    def test_abort_on_exhausted_crash_reraises(self):
        install_plan(plan("crash:@indices=0&attempts=0"))
        with pytest.raises(InjectedCrashError):
            run_tasks(
                _triple,
                [1, 2],
                jobs=1,
                policy=TaskPolicy(max_attempts=2, backoff_s=0.001),
            )

    def test_on_result_sees_failures_too(self):
        install_plan(plan("exc:@indices=0"))
        seen = []
        run_tasks(
            _triple,
            [1, 2],
            jobs=1,
            policy=TaskPolicy(on_error="skip"),
            on_result=lambda index, result: seen.append((index, result)),
        )
        assert seen[0][0] == 0 and isinstance(seen[0][1], TaskFailure)
        assert seen[1] == (1, 6)


class TestPoolRecovery:
    def test_skip_isolates_worker_exceptions(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "exc:@indices=3&attempts=0")
        stats = SweepStats()
        results = run_tasks(
            _triple,
            list(range(8)),
            jobs=2,
            policy=TaskPolicy(on_error="skip"),
            stats=stats,
        )
        assert failure_summary(results) == [
            (3, "InjectedTaskError", "exception", 1)
        ]
        assert [r for r in results if not isinstance(r, TaskFailure)] == [
            3 * i for i in range(8) if i != 3
        ]
        assert stats.points_failed == 1

    def test_failure_accounting_matches_serial(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "exc:0.3@seed=11&attempts=0")
        policy = TaskPolicy(on_error="skip", backoff_s=0.001)
        serial_stats, parallel_stats = SweepStats(), SweepStats()
        serial = run_tasks(
            _triple, list(range(16)), jobs=1, policy=policy, stats=serial_stats
        )
        parallel = run_tasks(
            _triple, list(range(16)), jobs=4, policy=policy, stats=parallel_stats
        )
        assert failure_summary(serial) == failure_summary(parallel)
        assert failure_summary(serial)  # the rate actually fired
        assert serial_stats.points_failed == parallel_stats.points_failed
        ok = lambda results: [
            r for r in results if not isinstance(r, TaskFailure)
        ]
        assert ok(serial) == ok(parallel)

    def test_crash_retries_then_succeeds(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:0.3@seed=7")
        stats = SweepStats()
        results = run_tasks(
            _triple,
            list(range(12)),
            jobs=3,
            policy=TaskPolicy(backoff_s=0.001),
            stats=stats,
        )
        assert results == [3 * i for i in range(12)]
        assert stats.retries > 0
        assert stats.points_failed == 0

    def test_worker_kill_rebuilds_the_pool(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:@indices=2")
        stats = SweepStats()
        results = run_tasks(
            _triple,
            list(range(6)),
            jobs=2,
            policy=TaskPolicy(backoff_s=0.001),
            stats=stats,
        )
        assert results == [3 * i for i in range(6)]
        assert stats.pool_restarts >= 1
        assert stats.retries >= 1

    def test_repeated_breaks_degrade_to_serial(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:@indices=0&attempts=0")
        stats = SweepStats()
        results = run_tasks(
            _triple,
            list(range(6)),
            jobs=2,
            policy=TaskPolicy(
                on_error="skip", max_pool_restarts=1, backoff_s=0.001
            ),
            stats=stats,
        )
        # The killer task ends as a crash failure (the serial path downgrades
        # the kill); every other task still completes.
        assert failure_summary(results) == [(0, "InjectedCrashError", "crash", 3)]
        assert results[1:] == [3 * i for i in range(1, 6)]
        assert stats.pool_restarts == 2

    def test_timeout_kills_and_retries(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "hang:@indices=1&sleep=30")
        stats = SweepStats()
        results = run_tasks(
            _triple,
            list(range(4)),
            jobs=2,
            policy=TaskPolicy(timeout_s=0.4, backoff_s=0.001),
            stats=stats,
        )
        # attempts=1 (the default): the retry does not hang, so the task
        # recovers after the watchdog kills its first attempt.
        assert results == [0, 3, 6, 9]
        assert stats.pool_restarts >= 1
        assert stats.retries >= 1

    def test_timeout_exhausts_to_failure(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "hang:@indices=1&sleep=30&attempts=0")
        stats = SweepStats()
        results = run_tasks(
            _triple,
            list(range(3)),
            jobs=2,
            policy=TaskPolicy(
                timeout_s=0.3, max_attempts=1, on_error="skip"
            ),
            stats=stats,
        )
        assert failure_summary(results) == [(1, "timeout", "timeout", 1)]
        assert results[0] == 0 and results[2] == 6
