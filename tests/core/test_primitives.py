"""Tests for the spatial / temporal / rotating primitives."""

import pytest

from repro.core.partition import PlanarGrid
from repro.core.primitives import (
    LoopOrder,
    PartitionDim,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)


class TestSpatialPrimitive:
    def test_channel_partition(self):
        spatial = SpatialPrimitive.channel(4)
        assert spatial.dim is PartitionDim.CHANNEL
        assert spatial.ways == 4
        assert spatial.grid.ways == 1

    def test_plane_partition(self):
        spatial = SpatialPrimitive.plane(PlanarGrid(2, 2))
        assert spatial.dim is PartitionDim.PLANE
        assert spatial.ways == 4
        assert spatial.co_ways == 1

    def test_hybrid_partition(self):
        spatial = SpatialPrimitive.hybrid(2, PlanarGrid(2, 2))
        assert spatial.dim is PartitionDim.HYBRID
        assert spatial.ways == 8

    def test_channel_must_not_split_plane(self):
        with pytest.raises(ValueError):
            SpatialPrimitive(PartitionDim.CHANNEL, co_ways=4, grid=PlanarGrid(2, 1))

    def test_plane_must_not_split_channels(self):
        with pytest.raises(ValueError):
            SpatialPrimitive(PartitionDim.PLANE, co_ways=2, grid=PlanarGrid(2, 1))

    def test_hybrid_must_split_both(self):
        with pytest.raises(ValueError):
            SpatialPrimitive.hybrid(1, PlanarGrid(2, 2))
        with pytest.raises(ValueError):
            SpatialPrimitive.hybrid(4, PlanarGrid(1, 1))

    def test_nonpositive_ways_raise(self):
        with pytest.raises(ValueError):
            SpatialPrimitive.channel(0)

    def test_describe(self):
        assert SpatialPrimitive.channel(4).describe() == "C4"
        assert SpatialPrimitive.plane(PlanarGrid(2, 2)).describe() == "P2x2"
        assert "H(" in SpatialPrimitive.hybrid(2, PlanarGrid(1, 4)).describe()


class TestTemporalPrimitive:
    def test_fields(self):
        temporal = TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 64)
        assert temporal.tile_h == 8
        assert temporal.order is LoopOrder.CHANNEL_PRIORITY

    @pytest.mark.parametrize("field", ["tile_h", "tile_w", "tile_co"])
    def test_nonpositive_tiles_raise(self, field):
        kwargs = {"order": LoopOrder.PLANE_PRIORITY, "tile_h": 8, "tile_w": 8, "tile_co": 8}
        kwargs[field] = 0
        with pytest.raises(ValueError):
            TemporalPrimitive(**kwargs)

    def test_describe(self):
        temporal = TemporalPrimitive(LoopOrder.PLANE_PRIORITY, 4, 8, 16)
        assert temporal.describe() == "plane[4x8x16]"


class TestRotationKind:
    def test_three_kinds(self):
        assert {r.value for r in RotationKind} == {"none", "activations", "weights"}
