"""Tests for the span tracer, the null recorder and the exporters."""

import json
import os
import pickle
import threading

from repro import obs
from repro.obs import NullRecorder, Recorder


class TestNullRecorder:
    def test_is_the_default(self):
        assert obs.get_recorder() is obs.NULL_RECORDER
        assert not obs.enabled()

    def test_all_operations_are_noops(self):
        null = NullRecorder()
        with null.span("anything", key="value"):
            null.count("c")
            null.gauge("g", 1.0)

    def test_span_is_one_shared_instance(self):
        null = NullRecorder()
        assert null.span("a") is null.span("b")

    def test_module_level_helpers_hit_the_null_recorder(self):
        with obs.span("x"):
            obs.count("c")
            obs.gauge("g", 2.0)


class TestSpans:
    def test_span_records_event(self):
        rec = Recorder()
        with obs.use(rec):
            with obs.span("work", item=3):
                pass
        events = rec.events()
        assert len(events) == 1
        assert events[0].name == "work"
        assert events[0].path == "work"
        assert events[0].dur_ns >= 0
        assert events[0].args == (("item", 3),)

    def test_nested_spans_build_paths(self):
        rec = Recorder()
        with obs.use(rec):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        paths = [e.path for e in rec.events()]
        assert paths == ["outer/inner", "outer"]

    def test_sibling_spans_share_parent_path(self):
        rec = Recorder()
        with obs.use(rec):
            with obs.span("outer"):
                with obs.span("a"):
                    pass
                with obs.span("b"):
                    pass
        assert [e.path for e in rec.events()] == ["outer/a", "outer/b", "outer"]

    def test_span_paths_are_per_thread(self):
        rec = Recorder()

        def worker():
            with rec.span("thread-span"):
                pass

        with obs.use(rec):
            with rec.span("main-span"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        by_name = {e.name: e for e in rec.events()}
        # The other thread's span must not inherit this thread's stack.
        assert by_name["thread-span"].path == "thread-span"

    def test_aggregate_spans_sorted_by_total(self):
        rec = Recorder()
        with obs.use(rec):
            for _ in range(3):
                with obs.span("hot"):
                    for _ in range(50):
                        pass
            with obs.span("cold"):
                pass
        agg = rec.aggregate_spans()
        assert agg["hot"][0] == 3
        assert agg["cold"][0] == 1
        totals = [total for _, total in agg.values()]
        assert totals == sorted(totals, reverse=True)

    def test_use_restores_previous_recorder(self):
        rec = Recorder()
        before = obs.get_recorder()
        with obs.use(rec):
            assert obs.get_recorder() is rec
        assert obs.get_recorder() is before


class TestSnapshots:
    def test_snapshot_is_picklable(self):
        rec = Recorder()
        with rec.span("w", n=1):
            rec.count("c", 2)
            rec.gauge("g", 0.5)
        snapshot = rec.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_merge_snapshot_sums_counters_and_appends_events(self):
        worker = Recorder()
        with worker.span("task"):
            worker.count("items", 5)
        parent = Recorder()
        parent.count("items", 1)
        parent.merge_snapshot(worker.snapshot())
        parent.merge_snapshot(worker.snapshot())
        assert parent.metrics.counter("items") == 11
        assert len(parent.events()) == 2

    def test_merge_snapshot_folds_histograms(self):
        worker = Recorder()
        worker.histogram("lat", 2.0)
        worker.histogram("lat", 8.0)
        parent = Recorder()
        parent.histogram("lat", 4.0)
        parent.merge_snapshot(worker.snapshot())
        stats = parent.metrics.histogram_stats("lat")
        assert stats["count"] == 3
        assert stats["min"] == 2.0
        assert stats["max"] == 8.0

    def test_merge_snapshot_appends_run_events(self):
        worker = Recorder()
        worker.event("fault.injected", kind="eio")
        parent = Recorder()
        parent.event("run.start", points=4)
        parent.merge_snapshot(worker.snapshot())
        names = [e["event"] for e in parent.run_events()]
        assert names == ["run.start", "fault.injected"]

    def test_attached_event_log_sees_local_and_merged_events(self, tmp_path):
        from repro.obs.events import EventLog, load_events

        log = EventLog(tmp_path / "events.jsonl", run_id="abc123")
        parent = Recorder()
        parent.attach_event_log(log)
        parent.event("run.start", points=1)
        worker = Recorder()
        worker.event("task.retry", count=1)
        parent.merge_snapshot(worker.snapshot())
        parent.event("run.finish", points=1)
        events, corrupt = load_events(tmp_path / "events.jsonl")
        assert corrupt == 0
        assert [e["event"] for e in events] == [
            "run.start",
            "task.retry",
            "run.finish",
        ]
        assert {e["run"] for e in events} == {"abc123"}


class TestChromeTrace:
    def _trace(self):
        rec = Recorder()
        with rec.span("outer", layer="conv1"):
            with rec.span("inner"):
                pass
        return rec, rec.chrome_trace()

    def test_top_level_shape(self):
        _, trace = self._trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"

    def test_complete_events_schema(self):
        rec, trace = self._trace()
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(rec.events())
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert isinstance(event["ts"], float)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_timestamps_rebased_to_earliest_span(self):
        _, trace = self._trace()
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0.0

    def test_process_metadata_present(self):
        _, trace = self._trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["name"] == "process_name"
            and e["pid"] == os.getpid()
            and e["args"]["name"] == "repro"
            for e in meta
        )

    def test_worker_pids_get_their_own_process_track(self):
        import dataclasses

        rec = Recorder()
        with rec.span("parent"):
            pass
        worker = Recorder()
        with worker.span("remote"):
            pass
        # Simulate a worker snapshot captured in another process.
        snapshot = worker.snapshot()
        snapshot["events"] = [
            dataclasses.replace(e, pid=99999) for e in snapshot["events"]
        ]
        rec.merge_snapshot(snapshot)
        trace = rec.chrome_trace()
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[99999] == "repro worker 99999"
        assert names[os.getpid()] == "repro"

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        rec, _ = self._trace()
        target = rec.write_chrome_trace(tmp_path / "trace.json")
        payload = json.loads(target.read_text())
        assert "traceEvents" in payload

    def test_write_metrics(self, tmp_path):
        rec = Recorder()
        rec.count("a", 3)
        target = rec.write_metrics(tmp_path / "metrics.json")
        assert json.loads(target.read_text()) == {
            "counters": {"a": 3},
            "gauges": {},
            "histograms": {},
        }
