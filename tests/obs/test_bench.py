"""Tests for the bench record schema, history and the compare gate.

Everything runs on synthetic records -- no benchmark is executed -- so the
noise gates, the fidelity strictness and the torn-history tolerance are
checked directly, the same way ``tests/core/test_checkpoint.py`` drills
the sweep checkpoint.
"""

import json

import pytest

from repro import obs
from repro.obs import bench as bench_mod
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchCapture,
    append_history,
    assemble_record,
    compare_records,
    environment_fingerprint,
    load_fragments,
    load_history,
    load_record,
    mad,
    median,
    validate_record,
    write_record,
)
from repro.obs.report import render_html, render_markdown


def make_record(
    sha="a" * 40,
    benches=None,
    goldens=None,
):
    """A minimal valid bench record from (median, mad) pairs."""
    bench_entries = {}
    for name, (med, spread) in (benches or {}).items():
        bench_entries[name] = {
            "node": f"bench_{name}.py::test_{name}",
            "wall_s": {
                "samples": [med],
                "median": med,
                "mad": spread,
                "repeats": 1,
            },
            "values": {},
            "artifacts": [f"{name}.txt"],
        }
    golden_entries = {}
    for name, (expected, actual) in (goldens or {}).items():
        deviation = (
            (actual - expected) / expected if expected else actual - expected
        )
        golden_entries[name] = {
            "expected": expected,
            "actual": actual,
            "deviation": deviation,
            "source": "test",
        }
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": "2026-01-01T00:00:00Z",
        "git_sha": sha,
        "environment": {"python": "3.11.7", "cpu_count": 1, "repro_env": {}},
        "config": {"profile": "minimal"},
        "benches": bench_entries,
        "fidelity": {
            "goldens": golden_entries,
            "max_abs_deviation": max(
                (abs(g["deviation"]) for g in golden_entries.values()),
                default=0.0,
            ),
            "ok": all(g["deviation"] == 0 for g in golden_entries.values()),
        },
    }


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        # samples 1,2,9: median 2, abs deviations 1,0,7 -> MAD 1.
        assert mad([1, 2, 9]) == 1

    def test_mad_constant_series_is_zero(self):
        assert mad([5.0, 5.0, 5.0]) == 0.0


class TestBenchCapture:
    def test_txt_artifact_matches_legacy_record_byte_for_byte(self, tmp_path):
        legacy = tmp_path / "legacy"
        new = tmp_path / "new"
        legacy.mkdir()
        new.mkdir()
        text = "Table X -- something\n  row 1\n  row 2"
        # The legacy fixture's exact write.
        (legacy / "t.txt").write_text(text + "\n")
        with BenchCapture("bench_t.py::test_t", new) as capture:
            capture("t", text)
        assert (new / "t.txt").read_bytes() == (legacy / "t.txt").read_bytes()

    def test_fragment_appended_with_values_and_counters(self, tmp_path):
        record_dir = tmp_path / "frags"
        with BenchCapture(
            "benchmarks/bench_x.py::test_x", tmp_path, record_dir
        ) as capture:
            obs.count("unit.test.work", 7)
            capture("x", "table")
            capture.values(answer=42)
        fragments = load_fragments(record_dir)
        frag = fragments["bench_x.py::test_x"]
        assert frag["wall_s"] > 0
        assert frag["values"] == {"answer": 42.0}
        assert frag["artifacts"] == ["x.txt"]
        assert frag["counters"]["unit.test.work"] == 7

    def test_restores_previous_recorder(self, tmp_path):
        before = obs.get_recorder()
        with BenchCapture("n::t", tmp_path, tmp_path / "frags"):
            assert obs.get_recorder() is not before
        assert obs.get_recorder() is before

    def test_no_record_dir_means_no_fragment_and_null_recorder(self, tmp_path):
        before = obs.get_recorder()
        with BenchCapture("n::t", tmp_path) as capture:
            assert obs.get_recorder() is before
            capture("y", "text")
        assert not (tmp_path / bench_mod.FRAGMENTS_NAME).exists()

    def test_json_mirrors_record_json(self, tmp_path):
        with BenchCapture("n::t", tmp_path) as capture:
            target = capture.json("report", {"a": 1})
        assert json.loads(target.read_text()) == {"a": 1}

    def test_load_fragments_skips_garbage_lines(self, tmp_path):
        record_dir = tmp_path / "frags"
        record_dir.mkdir()
        good = json.dumps({"bench": "b", "wall_s": 0.1, "values": {}})
        (record_dir / bench_mod.FRAGMENTS_NAME).write_text(
            good + "\n{torn gar\n"
        )
        assert list(load_fragments(record_dir)) == ["b"]


class TestAssembleAndValidate:
    def _runs(self):
        def frag(wall, answer):
            return {
                "b": {
                    "bench": "b",
                    "node": "bench_b.py::test_b",
                    "wall_s": wall,
                    "values": {"answer": answer},
                    "artifacts": ["b.txt"],
                    "counters": {"c": 1},
                }
            }

        return [frag(0.10, 1.0), frag(0.30, 2.0), frag(0.20, 3.0)]

    def test_wall_stats_across_repeats_values_from_last(self):
        record = assemble_record(
            self._runs(), config={"profile": "fast"}, fidelity={"goldens": {}}
        )
        entry = record["benches"]["b"]
        assert entry["wall_s"]["median"] == 0.20
        assert entry["wall_s"]["mad"] == pytest.approx(0.10)
        assert entry["wall_s"]["repeats"] == 3
        assert entry["values"] == {"answer": 3.0}
        assert validate_record(record) == []

    def test_empty_runs_raise(self):
        with pytest.raises(ValueError):
            assemble_record([], config={}, fidelity={})

    def test_validate_flags_missing_keys(self):
        problems = validate_record({"schema": "wrong"})
        assert any("fidelity" in p for p in problems)
        assert any("expected" in p for p in problems)

    def test_write_and_load_roundtrip(self, tmp_path):
        record = make_record(benches={"b": (0.1, 0.01)})
        path = write_record(record, tmp_path / "BENCH_test.json")
        assert load_record(path) == record

    def test_write_rejects_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_record({"schema": BENCH_SCHEMA}, tmp_path / "bad.json")


class TestHistory:
    def test_append_then_load(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = make_record(sha="a" * 40, benches={"b": (0.1, 0.0)})
        second = make_record(sha="b" * 40, benches={"b": (0.2, 0.0)})
        append_history(first, path)
        append_history(second, path)
        records, corrupt = load_history(path)
        assert corrupt == 0
        assert [r["git_sha"] for r in records] == ["a" * 40, "b" * 40]

    def test_torn_tail_is_tolerated(self, tmp_path):
        # A killed writer can tear at most the final line; the loader must
        # keep every complete record and just count the casualty.
        path = tmp_path / "history.jsonl"
        append_history(make_record(sha="a" * 40), path)
        append_history(make_record(sha="b" * 40), path)
        whole = path.read_text()
        path.write_text(whole + whole.splitlines()[0][: len(whole) // 3])
        records, corrupt = load_history(path)
        assert corrupt == 1
        assert [r["git_sha"] for r in records] == ["a" * 40, "b" * 40]

    def test_foreign_schema_lines_counted_as_corrupt(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"schema": "other/1"}) + "\n")
        records, corrupt = load_history(path)
        assert records == []
        assert corrupt == 1

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == ([], 0)


class TestCompare:
    def test_clean_rerun_passes(self):
        old = make_record(benches={"b": (0.100, 0.002)}, goldens={"g": (2.0, 2.0)})
        new = make_record(benches={"b": (0.101, 0.002)}, goldens={"g": (2.0, 2.0)})
        report = compare_records(old, new)
        assert report.perf_ok
        assert report.fidelity_ok

    def test_injected_regression_is_flagged(self):
        # +100% with 2 ms MAD clears k*MAD, the 10% floor and 10 ms.
        old = make_record(benches={"b": (0.100, 0.002)})
        new = make_record(benches={"b": (0.200, 0.002)})
        report = compare_records(old, new)
        assert [d.bench for d in report.regressions] == ["b"]
        assert not report.perf_ok

    def test_mad_level_noise_is_not_flagged(self):
        # +30 ms shift on a 40 ms MAD: inside the k=3 noise band.
        old = make_record(benches={"b": (1.000, 0.040)})
        new = make_record(benches={"b": (1.030, 0.040)})
        assert compare_records(old, new).perf_ok

    def test_relative_floor_suppresses_tiny_shifts(self):
        # Clears k*MAD and the absolute floor, but is only +2% relative.
        old = make_record(benches={"b": (1.000, 0.001)})
        new = make_record(benches={"b": (1.020, 0.001)})
        assert compare_records(old, new).perf_ok

    def test_absolute_floor_suppresses_fast_benches(self):
        # A 2 ms bench doubling is still under min_delta_s.
        old = make_record(benches={"b": (0.002, 0.0)})
        new = make_record(benches={"b": (0.004, 0.0)})
        assert compare_records(old, new).perf_ok

    def test_improvement_is_reported_not_fatal(self):
        old = make_record(benches={"b": (0.200, 0.002)})
        new = make_record(benches={"b": (0.100, 0.002)})
        report = compare_records(old, new)
        assert report.perf_ok
        assert report.perf[0].status == "improved"

    def test_added_and_removed_benches(self):
        old = make_record(benches={"gone": (0.1, 0.0)})
        new = make_record(benches={"fresh": (0.1, 0.0)})
        statuses = {d.bench: d.status for d in compare_records(old, new).perf}
        assert statuses == {"gone": "removed", "fresh": "added"}

    def test_fidelity_drift_of_one_golden_fails(self):
        old = make_record(goldens={"g1": (2.0, 2.0), "g2": (8.75, 8.75)})
        new = make_record(goldens={"g1": (2.0, 2.0), "g2": (8.75, 8.76)})
        report = compare_records(old, new)
        assert not report.fidelity_ok
        assert [issue.golden for issue in report.fidelity] == ["g2"]
        assert "paper" in report.fidelity[0].reason

    def test_actual_change_between_runs_fails_even_when_on_paper(self):
        # expected==actual in the new run (deviation 0) but the recomputed
        # value moved since the old record -- still an issue.
        old = make_record(goldens={"g": (2.0, 2.5)})
        new = make_record(goldens={"g": (2.0, 2.0)})
        report = compare_records(old, new, fidelity_tol=0.1)
        assert [issue.golden for issue in report.fidelity] == ["g"]
        assert "changed" in report.fidelity[0].reason

    def test_summary_mentions_regressions_and_drift(self):
        old = make_record(
            benches={"b": (0.100, 0.002)}, goldens={"g": (2.0, 2.0)}
        )
        new = make_record(
            benches={"b": (0.300, 0.002)}, goldens={"g": (2.0, 3.0)}
        )
        text = compare_records(old, new).summary()
        assert "REGRESSION" in text
        assert "DRIFT g" in text


class TestCounterGate:
    @staticmethod
    def record_with_counters(counters, name="b"):
        record = make_record(benches={name: (0.1, 0.002)})
        record["benches"][name]["counters"] = counters
        return record

    def test_matching_gated_counters_pass(self):
        old = self.record_with_counters({"dse.points.pruned": 7, "other": 1})
        new = self.record_with_counters({"dse.points.pruned": 7, "other": 99})
        report = compare_records(old, new, gate_counters=["dse.points.pruned"])
        assert report.counters_ok
        assert report.counters == []

    def test_gated_counter_drift_fails_exactly(self):
        old = self.record_with_counters({"dse.points.pruned": 7})
        new = self.record_with_counters({"dse.points.pruned": 8})
        report = compare_records(old, new, gate_counters=["dse.points.pruned"])
        assert not report.counters_ok
        issue = report.counters[0]
        assert issue.counter == "dse.points.pruned"
        assert (issue.old_value, issue.new_value) == (7, 8)
        assert "dse.points.pruned" in report.summary()

    def test_counter_missing_on_one_side_is_drift(self):
        old = self.record_with_counters({"dse.points.pruned": 7})
        new = self.record_with_counters({})
        report = compare_records(old, new, gate_counters=["dse.points.pruned"])
        assert not report.counters_ok

    def test_counter_absent_from_both_sides_is_ignored(self):
        old = self.record_with_counters({})
        new = self.record_with_counters({})
        report = compare_records(old, new, gate_counters=["dse.points.pruned"])
        assert report.counters_ok

    def test_ungated_counters_never_gate(self):
        old = self.record_with_counters({"dse.points.pruned": 7})
        new = self.record_with_counters({"dse.points.pruned": 999})
        assert compare_records(old, new).counters_ok

    def test_gating_a_histogram_name_is_a_clear_error(self):
        # A histogram's sum is timing-shaped and never exactly equal
        # between runs, so gating one would always fail (or worse,
        # silently pass as absent-from-both); the compare refuses loudly.
        old = self.record_with_counters({})
        new = self.record_with_counters({})
        new["benches"]["b"]["histograms"] = {
            "dse.point_eval_ms": {
                "count": 3, "sum": 1.5, "min": 0.1, "max": 1.0,
                "buckets": {"0": 3},
            }
        }
        with pytest.raises(ValueError, match="not gateable"):
            compare_records(
                old, new, gate_counters=["dse.point_eval_ms"]
            )

    def test_histogram_on_the_old_side_also_rejected(self):
        old = self.record_with_counters({})
        old["benches"]["b"]["histograms"] = {"h": {"count": 1}}
        new = self.record_with_counters({})
        with pytest.raises(ValueError, match="histogram"):
            compare_records(old, new, gate_counters=["h"])


class TestReport:
    def _history(self):
        return [
            make_record(
                sha="a" * 40,
                benches={"b": (0.100, 0.002)},
                goldens={"g": (2.0, 2.0)},
            ),
            make_record(
                sha="b" * 40,
                benches={"b": (0.150, 0.002)},
                goldens={"g": (2.0, 2.1)},
            ),
        ]

    def test_markdown_trend_and_drift(self):
        text = render_markdown(self._history())
        assert "aaaaaaa" in text and "bbbbbbb" in text
        assert "+50.0%" in text
        assert "DRIFT" in text

    def test_markdown_empty_history(self):
        assert "No recorded runs" in render_markdown([])

    def test_html_is_self_contained_and_flags_drift(self):
        page = render_html(self._history())
        assert page.startswith("<!doctype html>")
        assert "<script" not in page
        assert "class='drift'" in page

    def test_html_escapes_content(self):
        history = [make_record(benches={"<b&>": (0.1, 0.0)})]
        page = render_html(history)
        assert "<b&>" not in page
        assert "&lt;b&amp;&gt;" in page

    def test_counter_delta_section(self):
        history = self._history()
        history[0]["benches"]["b"]["counters"] = {"mapper.evals": 100}
        history[1]["benches"]["b"]["counters"] = {"mapper.evals": 300}
        text = render_markdown(history)
        assert "mapper.evals" in text
        assert "+200" in text


class TestEnvironmentFingerprint:
    def test_captures_repro_knobs_but_not_the_record_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "minimal")
        monkeypatch.setenv(bench_mod.RECORD_DIR_ENV, "/tmp/x")
        env = environment_fingerprint()
        assert env["repro_env"]["REPRO_BENCH_PROFILE"] == "minimal"
        assert bench_mod.RECORD_DIR_ENV not in env["repro_env"]
        assert env["cpu_count"] >= 1
