"""Per-worker observability capture through ``run_tasks``.

The contract: with a live recorder installed in the parent, a parallel run
reports the same counter totals as the serial run (counters are
order-independent sums), and worker spans come home tagged with the worker
process's pid.
"""

import os

from repro import obs
from repro.core.parallel import run_tasks


def traced_square(task: int) -> int:
    """Module-level worker: one span + counters per task."""
    with obs.span("task.square", n=task):
        obs.count("tasks.run")
        obs.count("tasks.value_sum", task)
    return task * task


def telemetry_square(task: int) -> int:
    """Module-level worker: a histogram sample and a run event per task."""
    obs.histogram("task.value", float(task))
    obs.event("task.done", n=task)
    return task * task


def plain_square(task: int) -> int:
    return task * task


TASKS = list(range(8))


def _run(jobs: int) -> tuple[list, dict]:
    recorder = obs.Recorder()
    with obs.use(recorder):
        results = run_tasks(traced_square, TASKS, jobs=jobs)
    return results, recorder


class TestCapture:
    def test_serial_records_into_parent(self):
        results, rec = _run(jobs=1)
        assert results == [t * t for t in TASKS]
        assert rec.metrics.counter("tasks.run") == len(TASKS)
        assert rec.metrics.counter("tasks.value_sum") == sum(TASKS)
        assert len(rec.events()) == len(TASKS)

    def test_parallel_counters_match_serial(self):
        serial_results, serial_rec = _run(jobs=1)
        parallel_results, parallel_rec = _run(jobs=2)
        assert parallel_results == serial_results
        assert parallel_rec.metrics.counters() == serial_rec.metrics.counters()

    def test_parallel_events_all_captured(self):
        _, rec = _run(jobs=2)
        events = [e for e in rec.events() if e.name == "task.square"]
        assert len(events) == len(TASKS)
        # Every task's span argument made it home, regardless of which
        # worker ran it.
        assert sorted(dict(e.args)["n"] for e in events) == TASKS

    def test_worker_spans_keep_worker_pid(self):
        _, rec = _run(jobs=2)
        pids = {e.pid for e in rec.events()}
        # The pool forks at least one child; its spans keep its pid.
        assert pids and os.getpid() not in pids

    def test_null_recorder_skips_capture(self):
        assert obs.get_recorder() is obs.NULL_RECORDER
        results = run_tasks(plain_square, TASKS, jobs=2)
        assert results == [t * t for t in TASKS]

    def test_results_preserve_task_order(self):
        results, _ = _run(jobs=3)
        assert results == [t * t for t in TASKS]


def _run_telemetry(jobs: int) -> obs.Recorder:
    recorder = obs.Recorder()
    with obs.use(recorder):
        run_tasks(telemetry_square, TASKS, jobs=jobs)
    return recorder


class TestTelemetryCapture:
    def test_parallel_histograms_match_serial(self):
        serial = _run_telemetry(jobs=1)
        parallel = _run_telemetry(jobs=2)
        assert (
            parallel.metrics.histograms() == serial.metrics.histograms()
        ), "histogram buckets/count/extremes must merge jobs-invariantly"
        assert (
            parallel.metrics.histogram_stats("task.value")
            == serial.metrics.histogram_stats("task.value")
        )

    def test_worker_run_events_come_home(self):
        recorder = _run_telemetry(jobs=2)
        events = [
            e for e in recorder.run_events() if e["event"] == "task.done"
        ]
        assert sorted(e["n"] for e in events) == TASKS
        # Worker-side events keep their worker's pid, like spans do.
        assert any(e["pid"] != os.getpid() for e in events)
