"""Tests for the structured run event log (repro.obs.events)."""

import json

import pytest

from repro import durable, obs
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENTS_FILENAME,
    EventLog,
    canonical_event,
    load_events,
    make_event,
    new_run_id,
    resolve_events_path,
    schema_errors,
)
from repro.testing.faults import FaultPlan, FaultSpec, install_plan


@pytest.fixture(autouse=True)
def clean_fault_state():
    previous = install_plan(None)
    durable.reset_degraded()
    yield
    install_plan(previous)
    durable.reset_degraded()


class TestMakeEvent:
    def test_envelope_fields(self):
        record = make_event("run.start", {"op": "explore", "points": 3})
        assert record["v"] == EVENT_SCHEMA_VERSION
        assert record["event"] == "run.start"
        assert record["op"] == "explore" and record["points"] == 3
        assert isinstance(record["seq"], int)
        assert isinstance(record["pid"], int)
        assert isinstance(record["t"], float)

    def test_sequence_is_monotonic(self):
        first = make_event("a", {})
        second = make_event("b", {})
        assert second["seq"] > first["seq"]

    def test_envelope_collision_rejected(self):
        for key in ("v", "run", "seq", "pid", "t", "event"):
            with pytest.raises(ValueError, match="collides"):
                make_event("x", {key: 1})

    def test_run_ids_are_fresh_and_short(self):
        a, b = new_run_id(), new_run_id()
        assert a != b
        assert len(a) == 12 and int(a, 16) >= 0


class TestResolveEventsPath:
    def test_jsonl_path_is_the_file(self, tmp_path):
        target = tmp_path / "log.jsonl"
        assert resolve_events_path(target) == target

    def test_other_paths_are_run_directories(self, tmp_path):
        target = tmp_path / "run1"
        assert resolve_events_path(target) == target / EVENTS_FILENAME

    def test_existing_directory_even_with_jsonl_suffix(self, tmp_path):
        target = tmp_path / "weird.jsonl"
        target.mkdir()
        assert resolve_events_path(target) == target / EVENTS_FILENAME


class TestEventLog:
    def test_append_stamps_run_id_and_creates_parents(self, tmp_path):
        log = EventLog(tmp_path / "deep" / "run" / "events.jsonl")
        log.append(make_event("run.start", {"op": "explore"}))
        events, corrupt = load_events(log.path)
        assert corrupt == 0
        assert [e["event"] for e in events] == ["run.start"]
        assert events[0]["run"] == log.run_id

    def test_degrades_once_on_enospc_answers_unaffected(self, tmp_path):
        install_plan(FaultPlan([FaultSpec(kind="enospc", sink="events")]))
        log = EventLog(tmp_path / "events.jsonl")
        log.append(make_event("run.start", {}))
        log.append(make_event("run.finish", {}))
        assert "events" in durable.degraded_sinks()
        # Degrading bumped the counter exactly once and the log file holds
        # nothing the failed append could have half-written.
        events, corrupt = load_events(log.path)
        assert events == [] and corrupt == 0

    def test_appends_stop_after_degrade(self, tmp_path):
        durable.record_sink_failure("events", OSError(28, "No space left"))
        log = EventLog(tmp_path / "events.jsonl")
        log.append(make_event("run.start", {}))
        assert not log.path.exists()

    def test_degrade_event_does_not_recurse(self, tmp_path):
        # A rate-1.0 I/O fault on the events sink fires on every append,
        # including any append triggered *by* handling the failure; the
        # reentrancy guard plus sink degradation must terminate the run
        # with the sink cleanly degraded.
        install_plan(FaultPlan([FaultSpec(kind="eio", sink="events")]))
        recorder = obs.Recorder()
        log = EventLog(tmp_path / "events.jsonl")
        recorder.attach_event_log(log)
        with obs.use(recorder):
            recorder.event("run.start", op="explore")
        assert "events" in durable.degraded_sinks()
        names = [e["event"] for e in recorder.run_events()]
        assert "run.start" in names and "degraded.enter" in names


class TestLoadEvents:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_events(tmp_path / "nope.jsonl") == ([], 0)

    def test_torn_tail_counted_not_fatal(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps(make_event("run.start", {}) | {"run": "abc"})
        path.write_text(good + "\n" + '{"v": 1, "run": "abc", "se')
        events, corrupt = load_events(path)
        assert len(events) == 1 and corrupt == 1

    def test_wrong_schema_version_counted_corrupt(self, tmp_path):
        path = tmp_path / "events.jsonl"
        record = make_event("run.start", {}) | {"run": "abc"}
        record["v"] = EVENT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record) + "\n")
        assert load_events(path) == ([], 1)

    def test_non_object_lines_counted_corrupt(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('[1, 2]\n"text"\n')
        assert load_events(path) == ([], 2)

    def test_run_directory_target(self, tmp_path):
        log = EventLog(resolve_events_path(tmp_path / "run1"))
        log.append(make_event("run.start", {}))
        events, _ = load_events(tmp_path / "run1")
        assert [e["event"] for e in events] == ["run.start"]


class TestSchemaErrors:
    def _valid(self, name, **fields):
        return make_event(name, fields) | {"run": "abc123"}

    def test_valid_log_has_no_errors(self):
        events = [
            self._valid("run.start", op="explore"),
            self._valid("point.batch", done=16, total=50),
            self._valid("run.finish", op="explore"),
        ]
        assert schema_errors(events) == []

    def test_missing_field_reported(self):
        event = self._valid("run.start")
        del event["pid"]
        assert any("pid" in e for e in schema_errors([event]))

    def test_mixed_run_ids_reported(self):
        events = [self._valid("a"), self._valid("b") | {"run": "other"}]
        assert any("multiple run ids" in e for e in schema_errors(events))

    def test_duplicate_run_start_reported(self):
        events = [self._valid("run.start"), self._valid("run.start")]
        assert any("run.start" in e for e in schema_errors(events))

    def test_run_start_must_lead_the_parent_process(self):
        events = [self._valid("phase.start"), self._valid("run.start")]
        assert any("first parent-process" in e for e in schema_errors(events))

    def test_bad_types_reported(self):
        event = self._valid("run.start")
        event["seq"] = "seventeen"
        assert any("'seq'" in e for e in schema_errors([event]))


class TestCanonicalEvent:
    def test_drops_only_the_volatile_envelope(self):
        a = make_event("point.batch", {"done": 16, "total": 50}) | {"run": "x"}
        b = make_event("point.batch", {"done": 16, "total": 50}) | {"run": "y"}
        assert a != b
        assert canonical_event(a) == canonical_event(b)

    def test_distinguishes_payloads(self):
        a = make_event("point.batch", {"done": 16, "total": 50})
        b = make_event("point.batch", {"done": 32, "total": 50})
        assert canonical_event(a) != canonical_event(b)

    def test_hashable_for_set_comparison(self):
        events = {canonical_event(make_event("a", {"n": i})) for i in range(3)}
        assert len(events) == 3
