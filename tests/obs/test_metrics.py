"""Tests for the counters/gauges/histograms registry."""

import json
import random
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    bucket_exponent,
    bucket_upper_bound,
)


class TestCounters:
    def test_default_increment(self):
        reg = MetricsRegistry()
        reg.count("a.b")
        reg.count("a.b")
        assert reg.counter("a.b") == 2

    def test_explicit_value(self):
        reg = MetricsRegistry()
        reg.count("bits", 64)
        reg.count("bits", 0.5)
        assert reg.counter("bits") == pytest.approx(64.5)

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0

    def test_snapshot_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.count("z")
        reg.count("a")
        reg.count("m")
        assert list(reg.counters()) == ["a", "m", "z"]

    def test_len_counts_both_kinds(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.gauge("b", 1.0)
        assert len(reg) == 2


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("util", 0.5)
        reg.gauge("util", 0.9)
        assert reg.gauges()["util"] == 0.9


class TestMerge:
    def test_counters_sum_gauges_keep_max(self):
        a = MetricsRegistry()
        a.count("hits", 3)
        a.gauge("util", 0.1)
        b = MetricsRegistry()
        b.count("hits", 4)
        b.count("misses", 1)
        b.gauge("util", 0.9)
        a.merge(b.counters(), b.gauges())
        assert a.counter("hits") == 7
        assert a.counter("misses") == 1
        assert a.gauges()["util"] == 0.9

    def test_merge_gauge_never_regresses(self):
        # High-water semantics: a later snapshot with a smaller gauge must
        # not overwrite the peak already folded in.
        a = MetricsRegistry()
        a.gauge("queue.depth", 8)
        a.merge(None, {"queue.depth": 3})
        assert a.gauges()["queue.depth"] == 8

    def test_merge_creates_missing_gauge(self):
        a = MetricsRegistry()
        a.merge(None, {"jobs": 4})
        assert a.gauges()["jobs"] == 4

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.merge(None, None)
        assert reg.counter("a") == 1

    def test_merge_is_order_independent(self):
        # The property the per-worker capture relies on: folding worker
        # snapshots in any order yields the same totals -- for gauges too,
        # now that merge keeps the per-gauge maximum.
        parts = []
        for value in (1, 10, 100):
            part = MetricsRegistry()
            part.count("n", value)
            part.gauge("peak", value)
            parts.append(part)
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for part in parts:
            forward.merge(part.counters(), part.gauges())
        for part in reversed(parts):
            backward.merge(part.counters(), part.gauges())
        assert forward.counters() == backward.counters()
        assert forward.gauges() == backward.gauges()
        assert forward.gauges()["peak"] == 100


class TestHistograms:
    def test_bucket_exponent_is_ceil_log2(self):
        assert bucket_exponent(1.0) == 0
        assert bucket_exponent(2.0) == 1
        assert bucket_exponent(2.1) == 2
        assert bucket_exponent(1000.0) == 10

    def test_nonpositive_values_underflow(self):
        assert bucket_exponent(0.0) == bucket_exponent(-5.0)
        assert bucket_upper_bound(bucket_exponent(0.0)) == 0.0

    def test_exact_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.histogram("lat", v)
        stats = reg.histogram_stats("lat")
        assert stats["count"] == 4
        assert stats["sum"] == pytest.approx(10.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0

    def test_quantiles_clamped_to_observed_range(self):
        reg = MetricsRegistry()
        reg.histogram("lat", 3.0)
        stats = reg.histogram_stats("lat")
        assert stats["p50"] == 3.0
        assert stats["p99"] == 3.0

    def test_quantiles_are_ordered(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.histogram("lat", float(v))
        stats = reg.histogram_stats("lat")
        assert stats["min"] <= stats["p50"] <= stats["p90"] <= stats["p99"]
        assert stats["p99"] <= stats["max"]

    def test_missing_histogram_is_none(self):
        assert MetricsRegistry().histogram_stats("nope") is None

    def test_merge_is_order_independent(self):
        # The jobs-parity property: folding worker histogram snapshots in
        # any order produces the identical buckets/count/min/max -- and so
        # identical quantile estimates.  The float sum agrees only to
        # rounding (float addition is not associative).
        rng = random.Random(7)
        parts = []
        for _ in range(4):
            part = MetricsRegistry()
            for _ in range(50):
                part.histogram("lat", rng.uniform(0.01, 500.0))
            parts.append(part)
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for part in parts:
            forward.merge(histograms=part.histograms())
        for part in reversed(parts):
            backward.merge(histograms=part.histograms())
        f, b = forward.histograms()["lat"], backward.histograms()["lat"]
        assert f["buckets"] == b["buckets"]
        assert (f["count"], f["min"], f["max"]) == (b["count"], b["min"], b["max"])
        assert f["sum"] == pytest.approx(b["sum"], rel=1e-12)
        fs = forward.histogram_stats("lat")
        bs = backward.histogram_stats("lat")
        assert (fs["p50"], fs["p90"], fs["p99"]) == (bs["p50"], bs["p90"], bs["p99"])
        assert fs["count"] == 200

    def test_merge_with_json_string_bucket_keys(self):
        # as_dict() stringifies bucket exponents for JSON; merge must
        # accept them back (the bench-record reload path).
        reg = MetricsRegistry()
        reg.histogram("lat", 3.0)
        reloaded = json.loads(json.dumps(reg.histograms()))
        other = MetricsRegistry()
        other.merge(histograms=reloaded)
        assert other.histograms() == reg.histograms()

    def test_len_counts_histograms(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.histogram("h", 1.0)
        assert len(reg) == 2

    def test_clear_drops_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h", 1.0)
        reg.clear()
        assert len(reg) == 0
        assert reg.histogram_stats("h") is None


class TestExport:
    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.count("a", 2)
        reg.gauge("g", 1.5)
        assert reg.as_dict() == {
            "counters": {"a": 2},
            "gauges": {"g": 1.5},
            "histograms": {},
        }

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.count("a.b.c", 7)
        assert json.loads(reg.to_json()) == reg.as_dict()

    def test_to_text_flat_lines(self):
        reg = MetricsRegistry()
        reg.count("b", 2)
        reg.count("a", 1)
        lines = reg.to_text().splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("b ")

    def test_to_text_is_globally_name_sorted(self):
        # Regression: counters, gauges and histogram summary lines must
        # interleave in ONE sorted order (not counters-then-gauges), so
        # text diffs across runs stay stable as the metric mix shifts.
        reg = MetricsRegistry()
        reg.gauge("a.gauge", 1.0)
        reg.count("z.counter", 2)
        reg.histogram("m.lat", 4.0)
        reg.count("a.counter", 1)
        lines = reg.to_text().splitlines()
        names = [line.split(" ", 1)[0] for line in lines]
        assert names == sorted(names)
        assert names[0] == "a.counter"
        assert names[-1] == "z.counter"
        assert "m.lat.p99" in names and "m.lat.count" in names

    def test_as_dict_includes_histogram_summary_and_buckets(self):
        reg = MetricsRegistry()
        reg.histogram("lat", 3.0)
        reg.histogram("lat", 100.0)
        payload = reg.as_dict()["histograms"]["lat"]
        assert payload["count"] == 2
        assert payload["sum"] == pytest.approx(103.0)
        assert set(payload["buckets"]) == {"2", "7"}
        assert json.loads(json.dumps(payload)) == payload

    def test_clear(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.clear()
        assert len(reg) == 0


class TestThreadSafety:
    def test_concurrent_counts_do_not_lose_increments(self):
        reg = MetricsRegistry()
        n, per_thread = 8, 2000

        def bump():
            for _ in range(per_thread):
                reg.count("shared")

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared") == n * per_thread
