"""Tests for the counters/gauges registry."""

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_default_increment(self):
        reg = MetricsRegistry()
        reg.count("a.b")
        reg.count("a.b")
        assert reg.counter("a.b") == 2

    def test_explicit_value(self):
        reg = MetricsRegistry()
        reg.count("bits", 64)
        reg.count("bits", 0.5)
        assert reg.counter("bits") == pytest.approx(64.5)

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0

    def test_snapshot_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.count("z")
        reg.count("a")
        reg.count("m")
        assert list(reg.counters()) == ["a", "m", "z"]

    def test_len_counts_both_kinds(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.gauge("b", 1.0)
        assert len(reg) == 2


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("util", 0.5)
        reg.gauge("util", 0.9)
        assert reg.gauges()["util"] == 0.9


class TestMerge:
    def test_counters_sum_gauges_keep_max(self):
        a = MetricsRegistry()
        a.count("hits", 3)
        a.gauge("util", 0.1)
        b = MetricsRegistry()
        b.count("hits", 4)
        b.count("misses", 1)
        b.gauge("util", 0.9)
        a.merge(b.counters(), b.gauges())
        assert a.counter("hits") == 7
        assert a.counter("misses") == 1
        assert a.gauges()["util"] == 0.9

    def test_merge_gauge_never_regresses(self):
        # High-water semantics: a later snapshot with a smaller gauge must
        # not overwrite the peak already folded in.
        a = MetricsRegistry()
        a.gauge("queue.depth", 8)
        a.merge(None, {"queue.depth": 3})
        assert a.gauges()["queue.depth"] == 8

    def test_merge_creates_missing_gauge(self):
        a = MetricsRegistry()
        a.merge(None, {"jobs": 4})
        assert a.gauges()["jobs"] == 4

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.merge(None, None)
        assert reg.counter("a") == 1

    def test_merge_is_order_independent(self):
        # The property the per-worker capture relies on: folding worker
        # snapshots in any order yields the same totals -- for gauges too,
        # now that merge keeps the per-gauge maximum.
        parts = []
        for value in (1, 10, 100):
            part = MetricsRegistry()
            part.count("n", value)
            part.gauge("peak", value)
            parts.append(part)
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for part in parts:
            forward.merge(part.counters(), part.gauges())
        for part in reversed(parts):
            backward.merge(part.counters(), part.gauges())
        assert forward.counters() == backward.counters()
        assert forward.gauges() == backward.gauges()
        assert forward.gauges()["peak"] == 100


class TestExport:
    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.count("a", 2)
        reg.gauge("g", 1.5)
        assert reg.as_dict() == {"counters": {"a": 2}, "gauges": {"g": 1.5}}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.count("a.b.c", 7)
        assert json.loads(reg.to_json()) == reg.as_dict()

    def test_to_text_flat_lines(self):
        reg = MetricsRegistry()
        reg.count("b", 2)
        reg.count("a", 1)
        lines = reg.to_text().splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("b ")

    def test_clear(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.clear()
        assert len(reg) == 0


class TestThreadSafety:
    def test_concurrent_counts_do_not_lose_increments(self):
        reg = MetricsRegistry()
        n, per_thread = 8, 2000

        def bump():
            for _ in range(per_thread):
                reg.count("shared")

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared") == n * per_thread
