"""Tests for the Prometheus text exporter (repro.obs.export)."""

from repro.obs.export import (
    _format_value,
    prometheus_name,
    prometheus_text,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry


class TestPrometheusName:
    def test_dots_become_underscores_with_prefix(self):
        assert (
            prometheus_name("mapper.candidates.evaluated")
            == "repro_mapper_candidates_evaluated"
        )

    def test_arbitrary_illegal_chars_sanitised(self):
        assert prometheus_name("a-b c/d%e") == "repro_a_b_c_d_e"

    def test_leading_digit_guarded(self):
        assert prometheus_name("4chiplet.count") == "repro__4chiplet_count"

    def test_colons_survive(self):
        assert prometheus_name("a:b") == "repro_a:b"


class TestFormatValue:
    def test_integers_render_without_exponent(self):
        assert _format_value(1_000_000.0) == "1000000"
        assert _format_value(-3.0) == "-3"

    def test_fractions_keep_full_precision(self):
        assert _format_value(0.1) == "0.1"
        assert float(_format_value(1 / 3)) == 1 / 3

    def test_specials(self):
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"


class TestPrometheusText:
    def test_empty_registry_is_empty_output(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_counters_and_gauges_with_type_lines(self):
        metrics = MetricsRegistry()
        metrics.count("cache.hits", 3)
        metrics.gauge("sweep.points", 42)
        text = prometheus_text(metrics)
        assert "# TYPE repro_cache_hits counter\nrepro_cache_hits 3\n" in text
        assert "# TYPE repro_sweep_points gauge\nrepro_sweep_points 42" in text

    def test_histogram_buckets_are_cumulative(self):
        metrics = MetricsRegistry()
        for value in (1.0, 1.5, 3.0, 3.5):  # buckets 2^0=1, 2^1=2, 2^2=4 (x2)
            metrics.histogram("eval.ms", value)
        text = prometheus_text(metrics)
        assert 'repro_eval_ms_bucket{le="1"} 1' in text
        assert 'repro_eval_ms_bucket{le="2"} 2' in text
        assert 'repro_eval_ms_bucket{le="4"} 4' in text
        assert 'repro_eval_ms_bucket{le="+Inf"} 4' in text
        assert "repro_eval_ms_sum 9" in text
        assert "repro_eval_ms_count 4" in text
        assert "# TYPE repro_eval_ms histogram" in text

    def test_one_global_name_sorted_ordering(self):
        metrics = MetricsRegistry()
        metrics.count("zz.last", 1)
        metrics.histogram("mm.middle", 1.0)
        metrics.gauge("aa.first", 1)
        text = prometheus_text(metrics)
        first = text.index("repro_aa_first")
        middle = text.index("repro_mm_middle")
        last = text.index("repro_zz_last")
        assert first < middle < last

    def test_deterministic_for_any_observation_order(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        values = [0.1, 2.0, 300.0, 4.5, 0.7]
        for v in values:
            forward.histogram("h", v)
        for v in reversed(values):
            backward.histogram("h", v)
        assert prometheus_text(forward) == prometheus_text(backward)

    def test_write_prometheus_round_trip(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.count("cache.hits", 7)
        target = write_prometheus(metrics, tmp_path / "metrics.prom")
        assert target.read_text() == prometheus_text(metrics)
        assert target.read_text().endswith("\n")
