"""Tests for the throttled stderr progress meter (repro.obs.progress)."""

import io

from repro.obs.progress import ProgressMeter, format_eta, progress_enabled


class _TTY(io.StringIO):
    def isatty(self):
        return True


class _FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestProgressEnabled:
    def test_no_progress_always_wins(self):
        assert progress_enabled(False, _TTY()) is False

    def test_default_renders_only_on_a_tty(self):
        assert progress_enabled(None, _TTY()) is True
        assert progress_enabled(None, io.StringIO()) is False

    def test_explicit_progress_cannot_force_a_pipe(self):
        # CI pipes stderr and relies on the auto-off: a pipe full of \r
        # repaints helps nobody, so --progress into a pipe stays silent.
        assert progress_enabled(True, io.StringIO()) is False
        assert progress_enabled(True, _TTY()) is True

    def test_stream_without_isatty_is_off(self):
        assert progress_enabled(None, object()) is False


class TestFormatEta:
    def test_minutes_seconds(self):
        assert format_eta(0) == "0:00"
        assert format_eta(65) == "1:05"
        assert format_eta(59.6) == "1:00"

    def test_hours(self):
        assert format_eta(3600) == "1:00:00"
        assert format_eta(3725) == "1:02:05"

    def test_unknown_durations(self):
        assert format_eta(float("nan")) == "--:--"
        assert format_eta(float("inf")) == "--:--"
        assert format_eta(-1) == "--:--"


class TestProgressMeter:
    def test_writes_only_to_its_stream(self):
        stream = io.StringIO()
        clock = _FakeClock()
        meter = ProgressMeter(total=10, stream=stream, now=clock)
        meter.update(5)
        meter.finish()
        assert stream.getvalue()  # the meter painted
        assert "\r" in stream.getvalue()

    def test_render_shows_fraction_rate_and_eta(self):
        clock = _FakeClock()
        meter = ProgressMeter(
            total=100, label="explore", stream=io.StringIO(), now=clock
        )
        meter.update(10)
        clock.t = 1.0
        meter.update(20)
        line = meter.render()
        assert line.startswith("[explore] 20/100")
        assert "10.0 pts/s" in line
        assert "eta 0:08" in line  # 80 remaining at 10/s

    def test_rate_uses_sliding_window(self):
        clock = _FakeClock()
        meter = ProgressMeter(
            total=None, stream=io.StringIO(), window_s=5.0, now=clock
        )
        meter.update(0)
        clock.t = 1.0
        meter.update(100)  # 100/s burst...
        clock.t = 10.0
        meter.update(110)  # ...aged out of the 5 s window
        assert meter.rate() < 50

    def test_unknown_total_renders_done_count(self):
        meter = ProgressMeter(total=None, stream=io.StringIO(), now=_FakeClock())
        meter.update(7)
        assert "7 done" in meter.render()
        assert "%" not in meter.render()

    def test_throttles_repaints(self):
        stream = io.StringIO()
        clock = _FakeClock()
        meter = ProgressMeter(
            total=100, stream=stream, min_interval=1.0, now=clock
        )
        for i in range(10):
            clock.t = i * 0.01
            meter.update(i)
        assert stream.getvalue().count("\r") == 1  # only the first painted

    def test_finish_is_unthrottled_and_newline_terminated(self):
        stream = io.StringIO()
        clock = _FakeClock()
        meter = ProgressMeter(
            total=100, stream=stream, min_interval=1e9, now=clock
        )
        meter.update(100)
        meter.finish()
        meter.finish()  # idempotent
        text = stream.getvalue()
        assert text.endswith("\n") and text.count("\n") == 1
        assert "100/100" in text

    def test_float_stats_render_as_percentages(self):
        meter = ProgressMeter(total=10, stream=io.StringIO(), now=_FakeClock())
        meter.update(5, hits=0.25)
        assert "hits 25%" in meter.render()

    def test_repaint_pads_over_a_longer_previous_line(self):
        stream = io.StringIO()
        clock = _FakeClock()
        meter = ProgressMeter(
            total=10, stream=stream, min_interval=0.0, now=clock
        )
        meter.update(1, note="something-long")
        first_len = len(meter.render())
        meter._stats.clear()
        clock.t = 1.0
        meter.update(2)
        tail = stream.getvalue().rsplit("\r", 1)[-1]
        assert len(tail) >= first_len  # padding erased the longer line
