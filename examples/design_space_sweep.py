"""Full pre-design DSE sweep with CSV export (the Figure 15 study).

Sweeps a (reduced) Table II space for a MAC budget, evaluates every valid
point, writes an ``area,edp,...`` CSV for external plotting, and prints the
ASCII area-vs-EDP scatter plus the Pareto front.

    python examples/design_space_sweep.py [model] [required_macs] [stride]
"""

import csv
import sys
from pathlib import Path

from repro import NNBaton, get_model
from repro.analysis.pareto import pareto_points
from repro.analysis.reporting import format_scatter, format_table


def main(model_name: str = "darknet19", required_macs: int = 1024, stride: int = 16) -> None:
    layers = get_model(model_name)
    baton = NNBaton()
    print(f"Sweeping the Table II space for {required_macs} MACs on "
          f"{model_name}@224 (memory stride {stride})...\n")

    result = baton.pre_design(
        {model_name: layers},
        required_macs=required_macs,
        max_chiplet_mm2=3.0,
        memory_stride=stride,
    )
    valid = result.valid_points
    print(f"Swept {result.swept} points; evaluated {len(valid)} valid designs.")

    csv_path = Path("dse_sweep.csv")
    with csv_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["config", "chiplets", "area_mm2", "energy_pj", "runtime_s", "edp_js",
             "a_l1_B", "w_l1_B", "a_l2_B"]
        )
        for point in valid:
            writer.writerow(
                [
                    point.label,
                    point.hw.n_chiplets,
                    f"{point.chiplet_area_mm2:.4f}",
                    f"{point.energy_pj[model_name]:.1f}",
                    f"{point.runtime_s(model_name):.6g}",
                    f"{point.edp(model_name):.6g}",
                    point.hw.memory.a_l1_bytes,
                    point.hw.memory.w_l1_bytes,
                    point.hw.memory.a_l2_bytes,
                ]
            )
    print(f"Wrote {csv_path} ({len(valid)} rows).\n")

    if valid:
        print(format_scatter(
            [(p.chiplet_area_mm2, p.edp(model_name), str(p.hw.n_chiplets)) for p in valid],
            width=68, height=16,
            x_label="chiplet area mm^2",
            y_label=f"EDP Js [{model_name}] glyph=chiplet count",
        ))

        front = pareto_points(
            valid,
            x=lambda p: p.chiplet_area_mm2,
            y=lambda p: p.edp(model_name),
        )
        print("\n" + format_table(
            ["Config", "Area mm^2", "EDP Js", "A-L1", "W-L1", "A-L2"],
            [
                [
                    p.label,
                    f"{p.chiplet_area_mm2:.2f}",
                    f"{p.edp(model_name):.2e}",
                    f"{p.hw.memory.a_l1_bytes // 1024}KB",
                    f"{p.hw.memory.w_l1_bytes // 1024}KB",
                    f"{p.hw.memory.a_l2_bytes // 1024}KB",
                ]
                for p in front
            ],
            title="Area/EDP Pareto front",
        ))

    if result.recommended is not None:
        print(f"\nRecommended design: {result.recommended.label} "
              f"with A-L1={result.recommended.hw.memory.a_l1_bytes}B, "
              f"W-L1={result.recommended.hw.memory.w_l1_bytes}B, "
              f"A-L2={result.recommended.hw.memory.a_l2_bytes}B")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "darknet19"
    macs = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    stride = int(sys.argv[3]) if len(sys.argv) > 3 else 16
    main(name, macs, stride)
