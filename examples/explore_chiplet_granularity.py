"""Chiplet granularity exploration (the Figure 14 study, pre-design flow).

With a required MAC budget, enumerate every (chiplets, cores, lanes,
vector-size) factorization with proportional memory, evaluate each on a
target model, and report the trade-off the paper highlights: fewer chiplets
save energy but blow the per-chiplet area budget.

    python examples/explore_chiplet_granularity.py [model] [total_macs] [area_mm2]
"""

import sys

from repro import SearchProfile, get_model, granularity_study
from repro.analysis.reporting import format_bar, format_table
from repro.core.dse import best_point


def main(model_name: str = "resnet50", total_macs: int = 2048, area_mm2: float = 2.0) -> None:
    layers = get_model(model_name)
    print(f"Granularity study: {total_macs} MACs for {model_name}@224, "
          f"chiplet area budget {area_mm2} mm^2\n")

    points = granularity_study(
        {model_name: layers}, total_macs=total_macs, profile=SearchProfile.FAST
    )
    evaluated = [p for p in points if p.valid]
    max_energy = max(p.energy_pj[model_name] for p in evaluated)

    rows = []
    for point in sorted(evaluated, key=lambda p: (p.hw.n_chiplets, p.edp(model_name))):
        fits = point.meets_area(area_mm2)
        rows.append(
            [
                point.label,
                f"{point.chiplet_area_mm2:.2f}" + ("" if fits else " (!)"),
                f"{point.energy_pj[model_name] / 1e9:.2f}",
                f"{point.runtime_s(model_name) * 1e3:.2f}",
                f"{point.edp(model_name):.2e}",
                format_bar(point.energy_pj[model_name], max_energy, 24),
            ]
        )
    print(format_table(
        ["Config", "Chiplet mm^2", "Energy mJ", "Runtime ms", "EDP Js", "Energy"],
        rows,
        title="(!) marks designs over the area budget",
    ))

    free = best_point(points, model_name, objective="energy")
    constrained = best_point(points, model_name, objective="edp", max_chiplet_mm2=area_mm2)
    print(f"\nBest energy (no constraint): {free.label} "
          f"({free.energy_pj[model_name] / 1e9:.2f} mJ, {free.chiplet_area_mm2:.2f} mm^2)")
    if constrained is None:
        print("No design meets the area budget.")
    else:
        print(f"EDP winner under {area_mm2} mm^2: {constrained.label} "
              f"({constrained.edp(model_name):.2e} Js, "
              f"{constrained.chiplet_area_mm2:.2f} mm^2)  <- the paper's red box")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    macs = int(sys.argv[2]) if len(sys.argv) > 2 else 2048
    area = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0
    main(name, macs, area)
