"""End-to-end workflow for a user-defined network.

Writes a small detection-style backbone as a JSON layer list, loads it back,
runs the post-design flow, and exports the compiler-facing mapping report --
the complete path a user takes to deploy *their* model with the tool.

    python examples/custom_model.py
"""

import json
from pathlib import Path

from repro import NNBaton, SearchProfile, case_study_hardware
from repro.analysis.reporting import format_table
from repro.core.serialize import compiler_report
from repro.workloads.io import load_model_file

#: A compact SSD-style backbone: strided convs, a depthwise stage, a head.
CUSTOM_MODEL = [
    {"name": "stem", "h": 300, "w": 300, "ci": 3, "co": 32, "kh": 3, "kw": 3,
     "stride": 2, "padding": 1},
    {"name": "stage1", "h": 150, "w": 150, "ci": 32, "co": 64, "kh": 3, "kw": 3,
     "stride": 2, "padding": 1},
    {"name": "stage2_dw", "h": 75, "w": 75, "ci": 64, "co": 64, "kh": 3, "kw": 3,
     "stride": 1, "padding": 1, "groups": 64},
    {"name": "stage2_pw", "h": 75, "w": 75, "ci": 64, "co": 128, "kh": 1, "kw": 1},
    {"name": "stage3", "h": 75, "w": 75, "ci": 128, "co": 256, "kh": 3, "kw": 3,
     "stride": 2, "padding": 1},
    {"name": "head_cls", "h": 38, "w": 38, "ci": 256, "co": 84, "kh": 3, "kw": 3,
     "padding": 1},
    {"name": "head_box", "h": 38, "w": 38, "ci": 256, "co": 16, "kh": 3, "kw": 3,
     "padding": 1},
]


def main() -> None:
    model_path = Path("custom_model.json")
    model_path.write_text(json.dumps(CUSTOM_MODEL, indent=2))
    layers = load_model_file(model_path)
    print(f"Loaded {len(layers)} layers from {model_path} "
          f"({sum(l.macs for l in layers) / 1e9:.2f} GMACs)\n")

    hw = case_study_hardware()
    baton = NNBaton(profile=SearchProfile.FAST)
    result = baton.post_design(layers, hw)

    print(format_table(
        ["Layer", "Mapping", "mJ", "Util"],
        [
            [r.layer.name, r.mapping.describe(),
             f"{r.best.energy_pj / 1e9:.3f}", f"{r.best.utilization:.0%}"]
            for r in result.layers
        ],
        title=f"Post-design flow on {hw.label()}",
    ))
    print(f"\nTotal: {result.energy_pj / 1e9:.2f} mJ, "
          f"{result.runtime_s() * 1e3:.2f} ms")

    report_path = Path("custom_model_mapping.json")
    report_path.write_text(json.dumps(
        [compiler_report(r.layer, hw, r.mapping) for r in result.layers],
        indent=2,
    ))
    print(f"Compiler report written to {report_path} "
          f"(loop nests, tile extents, sharing modes).")


if __name__ == "__main__":
    main()
