"""Quickstart: map one convolution layer on the paper's case-study machine.

Runs the post-design flow on a single ResNet-50 layer, prints the winning
spatial/temporal mapping, the energy breakdown, and the simulated runtime.

    python examples/quickstart.py
"""

from repro import (
    Mapper,
    SearchProfile,
    case_study_hardware,
    representative_layers,
    simulate_runtime,
)
from repro.analysis.reporting import format_bar, format_table
from repro.workloads.extraction import LayerKind


def main() -> None:
    hw = case_study_hardware()
    print(f"Hardware: {hw.name} -> {hw.label()} "
          f"({hw.total_macs} MACs, {hw.memory.w_l1_bytes // 1024} KB W-L1/core)")

    layer = representative_layers(224)[LayerKind.COMMON]
    print(f"Layer:    {layer.describe()}\n")

    mapper = Mapper(hw=hw, profile=SearchProfile.EXHAUSTIVE)
    result = mapper.search_layer(layer)
    report = result.best

    print(f"Searched {result.candidates_evaluated} legal mappings "
          f"({result.candidates_invalid} rejected).")
    print(f"Winner:   {report.mapping.describe()}\n")

    breakdown = report.energy.as_dict()
    total = report.energy_pj
    rows = [
        [name, f"{pj / 1e9:.4f}", f"{pj / total:.1%}", format_bar(pj, total, 30)]
        for name, pj in breakdown.items()
    ]
    rows.append(["total", f"{total / 1e9:.4f}", "100.0%", ""])
    print(format_table(["Component", "mJ", "Share", ""], rows, title="Energy breakdown"))

    sim = simulate_runtime(layer, hw, report.mapping)
    print(f"\nAnalytical compute cycles: {report.cycles:,}")
    print(f"Simulated cycles:          {sim.cycles:,.0f} "
          f"({sim.stall_cycles:,.0f} stall; "
          f"{'memory' if sim.memory_bound else 'compute'}-bound)")
    print(f"Runtime @ 500 MHz:         {sim.runtime_s(hw) * 1e6:.1f} us")
    print(f"MAC-array utilization:     {report.utilization:.1%}")


if __name__ == "__main__":
    main()
