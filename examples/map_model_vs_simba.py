"""Deploy a whole model and compare against the Simba baseline (Figure 12-13).

Runs NN-Baton's post-design flow over every layer of a model on the
case-study hardware, prints the per-layer mapping strategy (the report a
hardware compiler would consume) and the energy comparison against the
weight-centric Simba dataflow on identical resources.

    python examples/map_model_vs_simba.py [model] [resolution]

e.g. ``python examples/map_model_vs_simba.py resnet50 224``.
"""

import sys

from repro import (
    NNBaton,
    SearchProfile,
    case_study_hardware,
    evaluate_simba_model,
    get_model,
)
from repro.analysis.reporting import format_percent, format_table


def main(model_name: str = "resnet50", resolution: int = 224) -> None:
    hw = case_study_hardware()
    layers = get_model(model_name, resolution)
    print(f"Deploying {model_name}@{resolution} "
          f"({len(layers)} layers, {sum(l.macs for l in layers) / 1e9:.2f} GMACs) "
          f"on {hw.label()}\n")

    baton = NNBaton(profile=SearchProfile.FAST)
    result = baton.post_design(layers, hw)

    rows = []
    for layer_result in result.layers:
        layer = layer_result.layer
        rows.append(
            [
                layer.name,
                f"{layer.ho}x{layer.wo}x{layer.co}",
                layer_result.mapping.describe(),
                f"{layer_result.best.energy_pj / 1e9:.3f}",
                f"{layer_result.best.utilization:.0%}",
            ]
        )
    print(format_table(
        ["Layer", "Output", "Mapping strategy", "mJ", "Util"],
        rows,
        title="Post-design flow: layer-wise mapping strategies",
    ))

    simba_energy, simba_cycles, _ = evaluate_simba_model(layers, hw)
    print("\nModel totals:")
    print(f"  NN-Baton : {result.energy_pj / 1e9:8.2f} mJ, "
          f"{result.cycles:,} cycles ({result.runtime_s() * 1e3:.2f} ms)")
    print(f"  Simba    : {simba_energy.total_pj / 1e9:8.2f} mJ, "
          f"{simba_cycles:,} cycles")
    saving = 1 - result.energy_pj / simba_energy.total_pj
    print(f"  Energy saving vs Simba: {format_percent(saving)} "
          f"(paper reports 22.5%~44% across models)")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    res = int(sys.argv[2]) if len(sys.argv) > 2 else 224
    main(name, res)
