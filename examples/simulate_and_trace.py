"""Simulate a mapped layer and visualize its pipeline as a Gantt chart.

Maps a layer on the case-study machine, runs the discrete-event simulator
with trace recording, renders the per-chiplet timeline, and places the layer
on the hardware's roofline -- then repeats under a 16x tighter DRAM
bandwidth to show the pipeline going memory-bound.

    python examples/simulate_and_trace.py
"""

import dataclasses

from repro import Mapper, SearchProfile, case_study_hardware, simulate_runtime
from repro.analysis.gantt import phase_summary, render_gantt
from repro.analysis.roofline import Roofline
from repro.workloads import representative_layers
from repro.workloads.extraction import LayerKind


def run_and_show(hw, layer, mapping, label: str) -> None:
    result = simulate_runtime(layer, hw, mapping, collect_trace=True)
    print(f"--- {label} ---")
    print(render_gantt(result.trace, width=90))
    summary = phase_summary(result.trace)
    busiest = max(summary, key=summary.get)
    print(
        f"cycles={result.cycles:,.0f} (compute bound {result.compute_cycles:,.0f}, "
        f"stall {result.stall_cycles:,.0f}); busiest phase: {busiest}; "
        f"DRAM util {result.dram_utilization:.0%}, ring util {result.ring_utilization:.0%}"
    )
    print()


def main() -> None:
    hw = case_study_hardware()
    layer = representative_layers(224)[LayerKind.COMMON]
    mapping = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer).mapping
    print(f"Layer: {layer.describe()}")
    print(f"Mapping: {mapping.describe()}\n")

    roofline = Roofline(hw)
    from repro.core.loopnest import LoopNest

    point = roofline.locate(layer, LoopNest(layer, hw, mapping))
    print(
        f"Roofline: intensity {point.intensity_macs_per_byte:.1f} MAC/B "
        f"(ridge {roofline.ridge_intensity:.1f}) -> "
        f"{'compute' if point.compute_bound else 'memory'}-bound, "
        f"attainable {point.attainable_macs_per_cycle:.0f} MAC/cycle\n"
    )

    run_and_show(hw, layer, mapping, "nominal bandwidth")

    starved = dataclasses.replace(
        hw,
        tech=dataclasses.replace(
            hw.tech,
            dram_bandwidth_bits_per_cycle=hw.tech.dram_bandwidth_bits_per_cycle / 16,
        ),
    )
    run_and_show(starved, layer, mapping, "DRAM bandwidth / 16")


if __name__ == "__main__":
    main()
