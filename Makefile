# Convenience targets for the NN-Baton reproduction.

.PHONY: install test bench bench-full examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -x -q -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

# The paper-fidelity run: exhaustive mapping search and the full Figure 15
# memory sweep (tens of minutes on one core).
bench-full:
	REPRO_BENCH_PROFILE=exhaustive REPRO_FIG15_STRIDE=1 \
		pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/simulate_and_trace.py
	python examples/map_model_vs_simba.py alexnet 224
	python examples/design_space_sweep.py alexnet 512 48

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
