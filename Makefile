# Convenience targets for the NN-Baton reproduction.

.PHONY: install test audit bench bench-full bench-smoke bench-record bench-report batch-parity ci faults faults-io obs-telemetry guided lint coverage profile examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -x -q -m "not slow"

# Cheap static-analysis gate (mirrors the CI lint job).  Prefers ruff,
# falls back to pyflakes, and degrades to a syntax check when neither is
# installed so the target never blocks on optional tooling.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif python -c "import pyflakes" >/dev/null 2>&1; then \
		python -m pyflakes src/repro tests benchmarks examples; \
	else \
		echo "ruff/pyflakes not installed; syntax check only"; \
		python -m compileall -q src tests benchmarks examples; \
	fi

# Cost-model <-> simulator consistency audit: every registered model,
# evenly spaced layer sample, JSON report archived with the benchmark
# artifacts.  Non-zero exit on any invariant violation or out-of-envelope
# uncontended divergence.
audit:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro audit \
		--max-layers 4 --json benchmarks/results/audit.json

# Mirrors .github/workflows/ci.yml so CI and local runs stay in lockstep:
# lint, the tier-1 suite, the consistency audit, then the fast benchmark
# smoke subset.
ci: lint
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -x -q
	$(MAKE) audit
	$(MAKE) bench-smoke

# Fault-injection gate (mirrors the CI fault-injection job): every
# recovery path of the resilient executor, checkpoint/resume, and cache
# quarantine under the deterministic REPRO_FAULTS harness, then the
# end-to-end check that a faulted parallel sweep stays byte-identical to
# a clean serial run.  See docs/robustness.md.
faults:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -q \
		tests/testing/test_faults.py tests/core/test_parallel_faults.py \
		tests/core/test_checkpoint.py tests/core/test_cache.py \
		tests/integration/test_resilience.py
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models alexnet --stride 997 --profile minimal \
		--jobs 1 --json "$$tmp/clean.json" >/dev/null && \
	REPRO_FAULTS='crash:0.1@seed=7' \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models alexnet --stride 997 --profile minimal \
		--jobs 4 --on-error skip --json "$$tmp/faulted.json" >/dev/null && \
	cmp "$$tmp/clean.json" "$$tmp/faulted.json" && \
	echo "faulted sweep byte-identical to clean serial run"

# I/O fault-injection gate (mirrors the CI io-faults step): the
# durability/taxonomy/fuzz suites, then two end-to-end legs.  Leg 1: a
# sweep with half of all sink writes failing ENOSPC must produce
# byte-identical JSON to a clean run while reporting nonzero degraded.*
# counters (full disk costs the checkpoint, never the answer).  Leg 2: a
# guided search pointed at a corrupted --study file must quarantine it
# as *.corrupt-* and finish.  See docs/robustness.md.
faults-io:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -q \
		tests/core/test_durable.py tests/core/test_errors.py \
		tests/testing/test_faults.py tests/properties/test_input_fuzz.py
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models alexnet --stride 997 --profile minimal \
		--jobs 1 --json "$$tmp/clean.json" >/dev/null && \
	REPRO_FAULTS='enospc:0.5@seed=3' \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models alexnet --stride 997 --profile minimal \
		--jobs 1 --checkpoint-dir "$$tmp/ckpt" \
		--json "$$tmp/faulted.json" \
		--metrics-out "$$tmp/metrics.json" >/dev/null 2>&1 && \
	cmp "$$tmp/clean.json" "$$tmp/faulted.json" && \
	python -c 'import json, sys; \
counters = json.load(open(sys.argv[1]))["counters"]; \
degraded = {k: v for k, v in counters.items() if k.startswith("degraded.")}; \
assert degraded, f"no degraded.* counters in {sorted(counters)}"; \
print("degraded sinks:", ", ".join(sorted(degraded)))' "$$tmp/metrics.json" && \
	echo "enospc-faulted sweep byte-identical to clean run" && \
	printf 'not a sqlite database' > "$$tmp/study.sqlite" && \
	REPRO_FAULTS='corrupt-study' \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models alexnet --profile minimal \
		--strategy guided --trials 8 --seed 0 \
		--study "$$tmp/study.sqlite" --jobs 1 \
		--json "$$tmp/guided.json" >/dev/null 2>&1 && \
	ls "$$tmp"/study.sqlite.corrupt-* >/dev/null && \
	echo "corrupt study quarantined; guided search completed"

# Run-telemetry gate (mirrors the CI obs-telemetry job): the event-log/
# progress/export suites, then two end-to-end legs.  Leg 1: a sweep with
# --progress piped (auto-off; no TTY) must leave the result payload
# byte-identical to a --no-progress run.  Leg 2: a --jobs 4 sweep's event
# set and histogram counts must equal the serial run's.  See
# docs/observability.md.
obs-telemetry:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -q \
		tests/obs/test_events.py tests/obs/test_progress.py \
		tests/obs/test_export.py tests/obs/test_worker_capture.py
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models alexnet --stride 997 --profile minimal \
		--progress --json "$$tmp/with.json" \
		--events-out "$$tmp/run-j1" --metrics-out "$$tmp/m-j1.json" \
		>/dev/null && \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models alexnet --stride 997 --profile minimal \
		--no-progress --json "$$tmp/without.json" >/dev/null && \
	cmp "$$tmp/with.json" "$$tmp/without.json" && \
	echo "piped --progress leaves the payload byte-identical" && \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models alexnet --stride 997 --profile minimal \
		--jobs 4 --json "$$tmp/j4.json" \
		--events-out "$$tmp/run-j4" --metrics-out "$$tmp/m-j4.json" \
		>/dev/null && \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -c 'import json, sys; \
from repro.obs.events import canonical_event, load_events, schema_errors; \
j1, c1 = load_events(sys.argv[1]); j4, c4 = load_events(sys.argv[2]); \
assert j1 and not c1 and not schema_errors(j1), "bad serial log"; \
assert j4 and not c4 and not schema_errors(j4), "bad parallel log"; \
assert sorted(map(canonical_event, j1)) == sorted(map(canonical_event, j4)); \
h1 = json.load(open(sys.argv[3]))["histograms"]; \
h4 = json.load(open(sys.argv[4]))["histograms"]; \
assert {k: v["count"] for k, v in h1.items()} == \
	{k: v["count"] for k, v in h4.items()}; \
print(f"jobs-4 telemetry equals serial: {len(j1)} events, {len(h1)} histograms")' \
		"$$tmp/run-j1" "$$tmp/run-j4" "$$tmp/m-j1.json" "$$tmp/m-j4.json"

# Guided-vs-exhaustive differential gate (mirrors the CI guided-dse job):
# sweep the full Fig. 15 space as the oracle, run the seeded guided search
# on a 1% trial budget, and require the exact same recommended point.
# The oracle leg is the expensive one (tens of minutes on one core; the
# study and unit suites above cover the fast paths).  See
# docs/guided-search.md.
guided:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -q \
		tests/core/test_search.py tests/properties/test_search.py
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 4096 --area 3.0 --models alexnet --profile fast \
		--stride 1 --jobs 4 --json "$$tmp/exhaustive.json" >/dev/null && \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 4096 --area 3.0 --models alexnet --profile fast \
		--strategy guided --trials 139 --seed 0 \
		--study "$$tmp/guided-study.sqlite" --jobs 4 \
		--json "$$tmp/guided.json" >/dev/null && \
	python scripts/check_guided_gate.py "$$tmp/exhaustive.json" \
		"$$tmp/guided.json" --max-eval-frac 0.01

# Batch-vs-scalar parity gate (mirrors the CI guided-dse parity step):
# the unit/property suites first, then the full Fig. 15 pre-design sweep
# with the numpy batch kernel on and off -- the two JSON payloads must be
# byte-identical (winner, energy, cycles, EDP on every point) -- and the
# same gate on a transformer sweep, so GEMM-shaped candidate spaces are
# held to the identical contract.  See docs/modeling.md section 11.
batch-parity:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -q \
		tests/core/test_batch.py tests/properties/test_batch_kernel.py
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	REPRO_BATCH_KERNEL=1 \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 4096 --area 3.0 --models alexnet --profile fast \
		--stride 1 --jobs 4 --json "$$tmp/batch.json" >/dev/null && \
	REPRO_BATCH_KERNEL=0 \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 4096 --area 3.0 --models alexnet --profile fast \
		--stride 1 --jobs 4 --json "$$tmp/scalar.json" >/dev/null && \
	cmp "$$tmp/batch.json" "$$tmp/scalar.json" && \
	echo "batch kernel byte-identical to the scalar oracle (full Fig. 15 space)" && \
	REPRO_BATCH_KERNEL=1 \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models bert_base --profile minimal \
		--stride 997 --jobs 4 --json "$$tmp/bert-batch.json" >/dev/null && \
	REPRO_BATCH_KERNEL=0 \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models bert_base --profile minimal \
		--stride 997 --jobs 4 --json "$$tmp/bert-scalar.json" >/dev/null && \
	cmp "$$tmp/bert-batch.json" "$$tmp/bert-scalar.json" && \
	echo "batch kernel byte-identical on the transformer sweep (bert_base)" && \
	REPRO_BATCH_KERNEL=1 REPRO_BATCH_MAX_BYTES=16384 \
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro dse \
		--macs 512 --models bert_base --profile minimal \
		--stride 997 --jobs 4 --json "$$tmp/bert-chunked.json" >/dev/null && \
	cmp "$$tmp/bert-chunked.json" "$$tmp/bert-batch.json" && \
	echo "chunked batch kernel (REPRO_BATCH_MAX_BYTES) byte-identical to one-shot"

bench:
	pytest benchmarks/ --benchmark-only

# The fast benchmark subset CI runs on every push to catch perf-path
# regressions without paying for the full sweep, plus the observability
# overhead guard (disabled-mode hook cost must stay < 2% of a sweep).
bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest \
		benchmarks/bench_fig10_memory_model.py --benchmark-only -q
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest \
		benchmarks/bench_obs_overhead.py -q

# Structured bench record: run the suite under `repro bench` (minimal
# profile, warmup discarded), emit BENCH_<gitsha>.json with per-bench
# wall-time stats and the paper-fidelity block, append to the history,
# then gate against the checked-in baseline (fidelity strict, perf
# advisory -- local machines are not the baseline's machine).  See
# docs/observability.md.
bench-record:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench \
		--profile minimal --repeats 3 --warmup 1 \
		--out benchmarks/results/bench_latest.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench \
		compare benchmarks/results/bench_baseline.json \
		benchmarks/results/bench_latest.json --perf advisory

# Render the append-only bench history into the consolidated report.
bench-report:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench \
		report --out benchmarks/results/bench_report.md
	@echo "wrote benchmarks/results/bench_report.md"

# The tier-1 suite under the CI coverage gate.  Needs pytest-cov
# (``pip install -e .[cov]``); degrades to a plain run when it's absent so
# the target works on minimal installs.
coverage:
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
		PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -x -q \
			--cov=repro --cov-report=term --cov-fail-under=75; \
	else \
		echo "pytest-cov not installed (pip install -e .[cov]); plain run"; \
		PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -x -q; \
	fi

# Span/counter profile of one model's mapping search (docs/observability.md).
profile:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro profile \
		mobilenet_v2 --trace-out benchmarks/results/profile-trace.json \
		--metrics-out benchmarks/results/profile-metrics.json

# The paper-fidelity run: exhaustive mapping search and the full Figure 15
# memory sweep (tens of minutes on one core).
bench-full:
	REPRO_BENCH_PROFILE=exhaustive REPRO_FIG15_STRIDE=1 \
		pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/simulate_and_trace.py
	python examples/map_model_vs_simba.py alexnet 224
	python examples/design_space_sweep.py alexnet 512 48

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
